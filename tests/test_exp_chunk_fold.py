"""Tests for the worker-side, order-preserving chunk fold.

The contract: in aggregate mode with the default
:class:`~repro.exp.results.SweepAggregate` sink, workers may fold their
contiguous trial-index chunks into partial accumulator bundles and ship one
bundle per chunk; the parent merges bundles in chunk order.  Because every
accumulator statistic is order-independent (tallies, digests, boolean ANDs),
the chunked fold must fingerprint-match the per-trial streaming fold and the
in-memory ``mode="full"`` aggregation on the same grid and seeds — at every
worker count.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exp import GridSpec, run_sweep
from repro.exp.results import CellAccumulator, SweepAggregate
from repro.sim.faults import FaultPlan
from repro.sim.network import UniformDelay


def stochastic_grid(seeds=(0, 1, 2)):
    return GridSpec(
        protocols=["INBAC", "2PC", "PaxosCommit"],
        systems=[(4, 1), (5, 2)],
        delays=[None, ("uniform", lambda seed: UniformDelay(0.2, 1.0, seed=seed))],
        faults=[None, ("crash P1", FaultPlan.crash(1, at=0.0))],
        seeds=list(seeds),
    )


def failing_grid():
    """Every trial fails (wrong vote arity) — error accounting must survive folds."""
    return GridSpec(
        protocols=["INBAC"],
        systems=[(5, 2)],
        votes=[("truncated", [1, 1])],
        seeds=range(12),
    )


def parallel_or_skip(agg):
    if agg.meta["mode"] != "parallel":
        pytest.skip("fork start method unavailable; parallel path not exercised")
    return agg


# --------------------------------------------------------------------------- #
# fingerprint equivalence across fold paths
# --------------------------------------------------------------------------- #
class TestChunkFoldDeterminism:
    def test_chunk_fold_matches_per_trial_and_in_memory(self):
        in_memory = run_sweep(stochastic_grid(), workers=1)
        per_trial = run_sweep(
            stochastic_grid(), workers=3, mode="aggregate", fold="trial"
        )
        chunked = parallel_or_skip(
            run_sweep(stochastic_grid(), workers=3, mode="aggregate", fold="chunk")
        )
        assert chunked.meta["fold"] == "chunk"
        assert chunked.meta["chunks"] >= 2  # the fold actually chunked
        assert (
            chunked.aggregate_fingerprint()
            == per_trial.aggregate_fingerprint()
            == in_memory.aggregate_fingerprint()
        )
        assert chunked.aggregate_rows() == in_memory.aggregate_rows()
        assert chunked.robustness_rows() == in_memory.robustness_rows()

    @pytest.mark.parametrize("workers", [2, 3, 5])
    def test_chunk_fold_identical_at_any_worker_count(self, workers):
        serial = run_sweep(stochastic_grid(), workers=1, mode="aggregate")
        chunked = parallel_or_skip(
            run_sweep(stochastic_grid(), workers=workers, mode="aggregate", fold="chunk")
        )
        assert chunked.aggregate_fingerprint() == serial.aggregate_fingerprint()
        assert len(chunked) == len(serial)

    def test_auto_fold_uses_chunks_with_default_sink(self):
        agg = parallel_or_skip(
            run_sweep(stochastic_grid(), workers=3, mode="aggregate")
        )
        assert agg.meta["fold"] == "chunk"
        assert agg.meta["chunk_size"] >= 1
        assert agg.meta["chunks"] * agg.meta["chunk_size"] >= agg.meta["trials"]

    def test_custom_reducer_folds_per_trial(self):
        class Counter:
            def __init__(self):
                self.folded = 0
                self.meta = {}

            def fold(self, trial):
                self.folded += 1

        reducer = Counter()
        run_sweep(stochastic_grid(seeds=(0,)), workers=3, reducer=reducer)
        assert reducer.folded == stochastic_grid(seeds=(0,)).size
        assert reducer.meta["fold"] == "trial"

    def test_chunk_fold_with_custom_reducer_rejected(self):
        class Sink:
            def fold(self, trial):
                pass

        with pytest.raises(ConfigurationError, match="chunk"):
            run_sweep(stochastic_grid(), workers=2, reducer=Sink(), fold="chunk")

    def test_unknown_fold_rejected(self):
        with pytest.raises(ConfigurationError, match="fold"):
            run_sweep(stochastic_grid(), workers=1, mode="aggregate", fold="tree")

    def test_chunk_fold_with_full_mode_rejected(self):
        # mode="full" returns every TrialResult; a chunk-fold request there
        # would otherwise be silently ignored
        with pytest.raises(ConfigurationError, match="aggregate"):
            run_sweep(stochastic_grid(), workers=2, fold="chunk")

    def test_error_accounting_survives_chunk_folds(self):
        per_trial = run_sweep(failing_grid(), workers=1, mode="aggregate")
        chunked = parallel_or_skip(
            run_sweep(failing_grid(), workers=3, mode="aggregate", fold="chunk")
        )
        assert chunked.error_count == per_trial.error_count == 12
        # the retained sample is the same first-N-in-index-order either way
        assert chunked.sample_errors == per_trial.sample_errors
        assert len(chunked.sample_errors) == SweepAggregate.MAX_SAMPLE_ERRORS
        assert chunked.aggregate_fingerprint() == per_trial.aggregate_fingerprint()


# --------------------------------------------------------------------------- #
# merge primitives
# --------------------------------------------------------------------------- #
class TestMergePrimitives:
    def split_fold(self, split):
        """Fold one trial stream whole vs. split-and-merged at ``split``."""
        trials = list(run_sweep(stochastic_grid(), workers=1))
        whole = SweepAggregate()
        for trial in trials:
            whole.fold(trial)
        left, right = SweepAggregate(), SweepAggregate()
        for trial in trials[:split]:
            left.fold(trial)
        for trial in trials[split:]:
            right.fold(trial)
        left.merge(right)
        return whole, left

    @pytest.mark.parametrize("split", [0, 1, 17, 35])
    def test_split_and_merge_equals_single_stream(self, split):
        whole, merged = self.split_fold(split)
        assert merged.total_trials == whole.total_trials
        assert merged.cell_count == whole.cell_count
        assert merged.aggregate_rows() == whole.aggregate_rows()
        assert merged.aggregate_fingerprint() == whole.aggregate_fingerprint()
        assert merged.robustness_rows() == whole.robustness_rows()

    def test_cell_accumulator_merge_is_exact(self):
        trials = run_sweep(
            GridSpec(
                protocols=["2PC"],
                systems=[(5, 2)],
                delays=[("uniform", lambda seed: UniformDelay(0.2, 1.0, seed=seed))],
                seeds=range(9),
            ),
            workers=1,
        ).trials
        key = trials[0].key()
        whole = CellAccumulator(key, trials[0].index, trials[0].execution_class)
        for trial in trials:
            whole.fold(trial)
        a = CellAccumulator(key, trials[0].index, trials[0].execution_class)
        b = CellAccumulator(key, trials[4].index, trials[4].execution_class)
        for trial in trials[:4]:
            a.fold(trial)
        for trial in trials[4:]:
            b.fold(trial)
        a.merge(b)
        assert a.row() == whole.row()

    def test_merge_keeps_first_cell_metadata(self):
        key = ("P", 4, 1, "U=1", "failure-free", "all-yes", "-")
        older = CellAccumulator(key, first_index=3, execution_class="crash-failure")
        newer = CellAccumulator(key, first_index=9, execution_class="failure-free")
        newer.merge(older)
        assert newer.first_index == 3
        assert newer.execution_class == "crash-failure"
