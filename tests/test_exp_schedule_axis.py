"""Tests for the schedules axis and the mixed-vote (seeded) patterns."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    GridSpec,
    ScheduleSpec,
    mixed_votes,
    run_sweep,
    run_trial,
)
from repro.exp.spec import coerce_schedule, coerce_votes, make_cases


class TestScheduleAxis:
    def test_axis_expansion_and_labels(self):
        grid = GridSpec(
            protocols=["2PC"],
            systems=[(5, 2)],
            schedules=[None, "random-walk", ("cp", "crash-point", {"point": 2})],
            seeds=[0, 1],
        )
        trials = grid.trials()
        assert grid.size == len(trials) == 6
        labels = [t.schedule_label for t in trials]
        assert labels == ["-", "-", "random-walk", "random-walk", "cp", "cp"]
        spec = trials[4].schedule
        assert isinstance(spec, ScheduleSpec)
        assert spec.strategy == "crash-point"
        assert spec.strategy_params() == {"point": 2}

    def test_derived_seed_is_independent_of_the_schedule(self):
        # the schedule perturbs event order of an otherwise-fixed execution:
        # same cell + seed must mean same derived seed across strategies,
        # which is also what lets a stored schedule replay against its trial
        grid = GridSpec(
            protocols=["2PC"], systems=[(5, 2)],
            schedules=[None, "random-walk"], seeds=[7],
        )
        plain, explored = grid.trials()
        assert plain.derived_seed == explored.derived_seed

    def test_schedule_cells_aggregate_separately_with_violation_counts(self):
        grid = GridSpec(
            protocols=["2PC"],
            systems=[(5, 2)],
            schedules=["timestamp-order", ("rw", "random-walk", {"crash_prob": 0.1})],
            seeds=range(15),
        )
        rows = run_sweep(grid, workers=1, mode="aggregate").aggregate_rows()
        assert len(rows) == 2
        by_schedule = {r["schedule"]: r for r in rows}
        assert by_schedule["timestamp-order"]["violations"] == 0
        assert by_schedule["rw"]["violations"] > 0
        assert "T" not in by_schedule["rw"]["properties"]

    def test_mixed_axis_rows_are_column_homogeneous(self):
        # schedules=[None, strategy]: the unexplored cell's row must carry
        # placeholder schedule columns so table renderers keep the columns
        rows = run_sweep(
            GridSpec(
                protocols=["2PC"], systems=[(5, 2)],
                schedules=[None, ("rw", "random-walk", {"crash_prob": 0.1})],
                seeds=range(8),
            ),
            workers=1, mode="aggregate",
        ).aggregate_rows()
        assert [set(r) for r in rows][0] == set(rows[1])
        by_schedule = {r["schedule"]: r for r in rows}
        assert by_schedule["-"]["violations"] == 0
        assert by_schedule["rw"]["violations"] > 0

    def test_unscheduled_rows_have_no_schedule_column(self):
        rows = run_sweep(
            GridSpec(protocols=["2PC"], systems=[(4, 1)], seeds=[0]), workers=1
        ).aggregate_rows()
        assert "schedule" not in rows[0]
        assert "violations" not in rows[0]

    def test_schedule_trials_carry_replayable_extras(self):
        trial = make_cases(
            [{"protocol": "2PC", "n": 5, "f": 2,
              "schedule": ("rw", "random-walk", {"crash_prob": 0.2})}]
        )[0]
        result = run_trial(trial)
        assert result.error is None
        assert result.schedule_label == "rw"
        assert "schedule_trace" in result.extra
        assert "trace_fingerprint" in result.extra
        assert result.extra["schedule_trace"]["strategy"] == "random-walk"

    def test_duplicate_schedule_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            GridSpec(protocols=["2PC"], schedules=["random-walk", "random-walk"])

    def test_workload_and_schedule_axes_compose(self):
        # schedules x workloads is a supported grid (PR 5): a cluster trial
        # carrying a ScheduleSpec runs under the schedule controller
        grid = GridSpec(
            protocols=["2PC"],
            systems=[(3, 1)],
            workloads=["bank-transfer"],
            schedules=[None, "random-walk"],
            seeds=[0, 1],
        )
        trials = grid.trials()
        assert grid.size == len(trials) == 4
        assert {t.schedule_label for t in trials} == {"-", "random-walk"}
        assert all(t.workload is not None for t in trials)

    def test_workload_times_multi_votes_error_names_both_fields(self):
        # regression for the improved rejection message: the error must name
        # both offending axes (with their labels) and the supported
        # alternative, not just assert incompatibility
        with pytest.raises(ConfigurationError) as err:
            GridSpec(
                protocols=["2PC"],
                systems=[(3, 1)],
                workloads=[("bank", "bank-transfer", {})],
                votes=["all-yes", "all-no"],
            )
        message = str(err.value)
        assert "workloads=['bank']" in message
        assert "votes=['all-yes', 'all-no']" in message
        assert "separate, workload-free grid" in message

    def test_coerce_schedule_shorthands(self):
        assert coerce_schedule(None) is None
        spec = coerce_schedule("delay-reorder")
        assert (spec.label, spec.strategy) == ("delay-reorder", "delay-reorder")
        spec = coerce_schedule(("lbl", "crash-point"))
        assert (spec.label, spec.strategy, spec.params) == ("lbl", "crash-point", ())
        with pytest.raises(ConfigurationError):
            coerce_schedule(("a", "b", {}, "extra"))
        with pytest.raises(ConfigurationError):
            coerce_schedule(42)


class TestMixedVotes:
    def test_votes_are_a_pure_function_of_the_trial(self):
        grid = GridSpec(
            protocols=["2PC"], systems=[(6, 2)],
            vote_pattern=[mixed_votes(0.1)], seeds=range(12),
        )
        once = run_sweep(grid, workers=1)
        again = run_sweep(grid, workers=2)
        assert once.fingerprint() == again.fingerprint()
        # different seeds draw genuinely different vote mixes: at p=0.1 some
        # of these twelve trials commit (all drew yes) and some abort
        outcomes = {t.all_committed for t in once}
        assert outcomes == {True, False}

    def test_mixed_votes_resolve_from_derived_seed(self):
        spec = mixed_votes(0.3)
        assert spec.per_trial
        assert spec.resolve(8, 42) == spec.resolve(8, 42)
        assert spec.resolve(8, 42) != spec.resolve(8, 43) or spec.resolve(
            8, 1
        ) != spec.resolve(8, 2)

    def test_named_string_patterns(self):
        one_no = coerce_votes("one-no:3")
        assert one_no.resolve(5, 0) == [1, 1, 0, 1, 1]
        mixed = coerce_votes("mixed:0.25")
        assert mixed.per_trial
        votes = mixed.resolve(10, 5)
        assert set(votes) <= {0, 1} and len(votes) == 10
        with pytest.raises(ConfigurationError):
            coerce_votes("one-no:zero")
        with pytest.raises(ConfigurationError):
            coerce_votes("mixed:1.5")
        with pytest.raises(ConfigurationError):
            coerce_votes("unknown-pattern")

    def test_vote_pattern_is_an_alias_for_votes(self):
        grid = GridSpec(
            protocols=["2PC"], systems=[(5, 2)], vote_pattern=["all-no"], seeds=[0]
        )
        assert [t.votes.label for t in grid.trials()] == ["all-no"]
        with pytest.raises(ConfigurationError):
            GridSpec(
                protocols=["2PC"], votes=["all-no"], vote_pattern=["all-yes"]
            )

    def test_vote_spec_needs_exactly_one_pattern(self):
        from repro.exp import VoteSpec, all_yes

        with pytest.raises(ConfigurationError):
            VoteSpec(label="both", pattern=all_yes, seeded=lambda n, s: [1] * n)
        with pytest.raises(ConfigurationError):
            VoteSpec(label="neither")

    def test_mixed_votes_commit_rate_tracks_probability(self):
        # with P(no)=0 every trial commits; with P(no)=0.8 almost none do
        def rate(p):
            agg = run_sweep(
                GridSpec(
                    protocols=["2PC"], systems=[(5, 2)],
                    vote_pattern=[mixed_votes(p)], seeds=range(20),
                ),
                workers=1, mode="aggregate",
            )
            return agg.aggregate_rows()[0]["commit_rate"]

        assert rate(0.0) == 1.0
        assert rate(0.8) < 0.3
