"""Tests for the spawn-safe spec subset and the exp registries."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    GridSpec,
    ensure_spawn_safe,
    make_reducer,
    mixed_votes,
    named_delay,
    named_workload,
    run_sweep,
    run_trials,
)
from repro.exp.registry import (
    NamedDelayFactory,
    NamedWorkloadFactory,
    delay_model_names,
    reducer_names,
    workload_names,
)
from repro.exp.spec import ScheduleSpec
from repro.sim.faults import DelayRule, FaultPlan
from repro.sim.network import LognormalDelay, UniformDelay


def registry_grid(seeds=range(6)):
    """A grid built entirely from registry names: spawn-safe by construction."""
    return GridSpec(
        protocols=["2PC", "INBAC"],
        systems=[(5, 2)],
        delays=["uniform", ("heavy-tail", "lognormal", {"sigma": 0.4})],
        faults=[None, ("crash P1", FaultPlan.crash(1, at=0.5))],
        votes=["all-yes", "one-no:3", "mixed:0.2"],
        schedules=[None, ("rw", "random-walk", {"crash_prob": 0.05})],
        seeds=seeds,
    )


class TestEnsureSpawnSafe:
    def test_registry_named_grid_passes(self):
        ensure_spawn_safe(registry_grid().trials())

    def test_lambda_delay_is_named_in_the_error(self):
        grid = GridSpec(
            protocols=["2PC"], systems=[(4, 1)],
            delays=[("adversary", lambda seed: None)], seeds=range(6),
        )
        with pytest.raises(ConfigurationError) as err:
            ensure_spawn_safe(grid.trials())
        assert "delays['adversary']" in str(err.value)
        assert "spawn" in str(err.value)

    def test_lambda_fault_predicate_is_named_in_the_error(self):
        plan = FaultPlan(
            delay_rules=[DelayRule(predicate=lambda p: True, delay=30.0)],
            description="pred",
        )
        grid = GridSpec(
            protocols=["2PC"], systems=[(4, 1)], faults=[("pred", plan)], seeds=range(6)
        )
        with pytest.raises(ConfigurationError) as err:
            ensure_spawn_safe(grid.trials())
        assert "faults['pred']" in str(err.value)

    def test_unpicklable_collector_is_reported(self):
        trials = GridSpec(protocols=["2PC"], systems=[(4, 1)], seeds=[0]).trials()
        with pytest.raises(ConfigurationError) as err:
            ensure_spawn_safe(trials, collector=lambda t, r: {})
        assert "collector" in str(err.value)

    def test_explicit_spawn_request_validates_loudly(self):
        grid = GridSpec(
            protocols=["2PC"], systems=[(4, 1)],
            delays=[("adversary", lambda seed: None)], seeds=range(8),
        )
        with pytest.raises(ConfigurationError) as err:
            run_sweep(grid, workers=2, start_method="spawn")
        assert "delays['adversary']" in str(err.value)

    def test_unknown_start_method_rejected(self):
        grid = GridSpec(protocols=["2PC"], systems=[(4, 1)], seeds=range(4))
        with pytest.raises(ConfigurationError):
            run_sweep(grid, workers=2, start_method="forkserver")


class TestSpawnExecution:
    def test_spawn_pool_reproduces_the_serial_sweep_exactly(self):
        serial = run_sweep(registry_grid(), workers=1)
        spawned = run_sweep(registry_grid(), workers=2, start_method="spawn")
        assert spawned.meta["start_method"] == "spawn"
        assert spawned.meta["mode"] == "parallel"
        assert spawned.fingerprint() == serial.fingerprint()
        assert spawned.aggregate_fingerprint() == serial.aggregate_fingerprint()

    def test_fork_remains_the_default_where_available(self):
        sweep = run_sweep(registry_grid(seeds=range(3)), workers=2)
        if sweep.meta["mode"] == "parallel":
            assert sweep.meta["start_method"] == "fork"


class TestClusterReplayAcrossStartMethods:
    """A shrunk cluster counterexample replays byte-identically everywhere.

    The whole chain is registry-named (protocol, workload, replay schedule),
    so the very same trial list runs under the serial path, a fork pool and a
    spawn pool — and every one must reproduce the stored counterexample's
    trace fingerprint exactly.
    """

    def _replay_grid(self):
        from repro.explore import explore

        report = explore(
            "2PC", n=3, f=1, budget=16,
            workload=("uniform3", "uniform", {"transactions": 4}),
            preset="cluster-anomaly", properties=("termination",),
            max_time=150.0,
        )
        hit = report.violations_of("termination")[0]
        assert hit.shrunk is not None and len(hit.shrunk) >= 1
        replay_spec = ScheduleSpec(
            label="replay",
            strategy="replay",
            params=(
                ("decisions", tuple(tuple(d) for d in hit.shrunk.decisions)),
            ),
        )
        # >= 4 trials so the pool actually engages; trial 0 is the true
        # counterexample, the fillers replay the same decisions against
        # neighbouring seeds (inapplicable decisions are ignored)
        grid = GridSpec(
            protocols=["2PC"],
            systems=[(3, 1)],
            workloads=[("uniform3", "uniform", {"transactions": 4})],
            schedules=[replay_spec],
            seeds=[hit.base_seed + i for i in range(4)],
            max_time=150.0,
        )
        return grid, hit

    def test_shrunk_counterexample_replays_under_serial_fork_and_spawn(self):
        grid, hit = self._replay_grid()
        trials = grid.trials()
        ensure_spawn_safe(trials)
        serial = run_trials(trials, workers=1, mode="full", trace_level="full")
        forked = run_trials(
            trials, workers=2, mode="full", trace_level="full",
            start_method="fork",
        )
        spawned = run_trials(
            trials, workers=2, mode="full", trace_level="full",
            start_method="spawn",
        )
        assert forked.meta["start_method"] == "fork"
        assert spawned.meta["start_method"] == "spawn"
        fingerprints = {
            sweep.trials[0].extra["trace_fingerprint"]
            for sweep in (serial, forked, spawned)
        }
        assert fingerprints == {hit.shrunk_fingerprint}
        # the violation itself reproduces in every execution mode
        assert not serial.trials[0].termination
        assert not spawned.trials[0].termination
        # and the full sweeps are byte-identical across start methods
        assert serial.fingerprint() == forked.fingerprint() == spawned.fingerprint()


class TestDelayRegistry:
    def test_builtin_names(self):
        assert {"fixed", "uniform", "lognormal"} <= set(delay_model_names())

    def test_named_delay_builds_seeded_models(self):
        spec = named_delay("uniform", lo=0.5, hi=1.0)
        model = spec.factory(7)
        assert isinstance(model, UniformDelay)
        assert (model.lo, model.hi) == (0.5, 1.0)
        # per-trial seeding: same seed, same sequence
        a = spec.factory(7).delay(1, 2, None, 0.0)
        b = spec.factory(7).delay(1, 2, None, 0.0)
        assert a == b
        assert spec.label == "uniform(hi=1.0,lo=0.5)"
        heavy = named_delay("lognormal", label="tail").factory(3)
        assert isinstance(heavy, LognormalDelay)

    def test_unknown_delay_name_rejected(self):
        with pytest.raises(ConfigurationError):
            NamedDelayFactory("no-such-model", {})

    def test_factory_equality_feeds_cell_memoisation(self):
        assert NamedDelayFactory("fixed", {}) == NamedDelayFactory("fixed", {})
        assert NamedDelayFactory("fixed", {}) != NamedDelayFactory("uniform", {})


class TestWorkloadRegistry:
    def test_builtin_names(self):
        assert {"uniform", "hotspot", "bank-transfer"} <= set(workload_names())

    def test_named_workload_builds_seeded_transactions(self):
        spec = named_workload("bank-transfer", transactions=3)
        txns = spec.factory(4, 7)
        assert len(txns) == 3
        assert all(len(t.participants()) == 2 for t in txns)
        # per-trial seeding: same (n, seed) -> identical workload
        again = spec.factory(4, 7)
        assert [t.txn_id for t in txns] == [t.txn_id for t in again]
        assert [t.operations for t in txns] == [t.operations for t in again]
        assert spec.label == "bank-transfer(transactions=3)"

    def test_unknown_workload_name_rejected(self):
        with pytest.raises(ConfigurationError):
            NamedWorkloadFactory("no-such-workload", {})
        with pytest.raises(ConfigurationError):
            GridSpec(protocols=["2PC"], workloads=["no-such-workload"])

    def test_factory_equality_and_pickling(self):
        import pickle

        factory = NamedWorkloadFactory("uniform", {"transactions": 5})
        assert factory == NamedWorkloadFactory("uniform", {"transactions": 5})
        assert factory != NamedWorkloadFactory("uniform", {})
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory

    def test_spawn_pool_reproduces_a_cluster_schedule_sweep(self):
        grid = lambda: GridSpec(
            protocols=["2PC", "INBAC"],
            systems=[(3, 1)],
            workloads=["bank-transfer"],
            schedules=[None, ("rw", "random-walk", {"crash_prob": 0.1})],
            seeds=range(2),
            max_time=150.0,
        )
        ensure_spawn_safe(grid().trials())
        serial = run_sweep(grid(), workers=1)
        spawned = run_sweep(grid(), workers=2, start_method="spawn")
        assert spawned.meta["start_method"] == "spawn"
        assert spawned.fingerprint() == serial.fingerprint()
        assert spawned.aggregate_fingerprint() == serial.aggregate_fingerprint()


class TestReducerRegistry:
    def test_builtin_names(self):
        assert {"aggregate", "robustness", "violations"} <= set(reducer_names())

    def test_named_reducers_resolve(self):
        from repro.exp.results import RobustnessFold, SweepAggregate
        from repro.explore import ViolationFold

        assert isinstance(make_reducer("aggregate"), SweepAggregate)
        assert isinstance(make_reducer("robustness"), RobustnessFold)
        assert isinstance(make_reducer("violations"), ViolationFold)
        with pytest.raises(ConfigurationError):
            make_reducer("no-such-reducer")

    def test_named_reducer_through_run_sweep(self):
        fold = run_sweep(
            GridSpec(protocols=["2PC"], systems=[(4, 1)], seeds=range(5)),
            workers=1,
            reducer="robustness",
        )
        rows = fold.rows()
        assert rows and rows[0]["protocol"] == "2PC"


class TestCrossHashSeedDeterminism:
    """The same sweep + replay in subprocesses under different
    ``PYTHONHASHSEED`` values must produce byte-identical fingerprints —
    under the serial path, a fork pool and a spawn pool alike.  Any
    divergence means hash order (set iteration, str-keyed dict order)
    leaked into the bytes somewhere in the pipeline."""

    def test_fingerprints_identical_across_hash_seeds_and_pools(self):
        from repro.lint.sanitizer import run_hashseed_check

        out = run_hashseed_check(
            seeds=(101, 202), start_methods=("serial", "fork", "spawn")
        )
        assert out["ok"], out["diverging"]
        # both probes computed all nine fingerprints (3 methods x 3 metrics)
        for fingerprints in out["fingerprints"].values():
            assert len(fingerprints) == 9
        # and the two hash seeds agree key for key
        first, second = (out["fingerprints"][str(s)] for s in (101, 202))
        assert first == second
