"""Tests for the spawn-safe spec subset and the exp registries."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    GridSpec,
    ensure_spawn_safe,
    make_reducer,
    mixed_votes,
    named_delay,
    run_sweep,
)
from repro.exp.registry import NamedDelayFactory, delay_model_names, reducer_names
from repro.sim.faults import DelayRule, FaultPlan
from repro.sim.network import LognormalDelay, UniformDelay


def registry_grid(seeds=range(6)):
    """A grid built entirely from registry names: spawn-safe by construction."""
    return GridSpec(
        protocols=["2PC", "INBAC"],
        systems=[(5, 2)],
        delays=["uniform", ("heavy-tail", "lognormal", {"sigma": 0.4})],
        faults=[None, ("crash P1", FaultPlan.crash(1, at=0.5))],
        votes=["all-yes", "one-no:3", "mixed:0.2"],
        schedules=[None, ("rw", "random-walk", {"crash_prob": 0.05})],
        seeds=seeds,
    )


class TestEnsureSpawnSafe:
    def test_registry_named_grid_passes(self):
        ensure_spawn_safe(registry_grid().trials())

    def test_lambda_delay_is_named_in_the_error(self):
        grid = GridSpec(
            protocols=["2PC"], systems=[(4, 1)],
            delays=[("adversary", lambda seed: None)], seeds=range(6),
        )
        with pytest.raises(ConfigurationError) as err:
            ensure_spawn_safe(grid.trials())
        assert "delays['adversary']" in str(err.value)
        assert "spawn" in str(err.value)

    def test_lambda_fault_predicate_is_named_in_the_error(self):
        plan = FaultPlan(
            delay_rules=[DelayRule(predicate=lambda p: True, delay=30.0)],
            description="pred",
        )
        grid = GridSpec(
            protocols=["2PC"], systems=[(4, 1)], faults=[("pred", plan)], seeds=range(6)
        )
        with pytest.raises(ConfigurationError) as err:
            ensure_spawn_safe(grid.trials())
        assert "faults['pred']" in str(err.value)

    def test_unpicklable_collector_is_reported(self):
        trials = GridSpec(protocols=["2PC"], systems=[(4, 1)], seeds=[0]).trials()
        with pytest.raises(ConfigurationError) as err:
            ensure_spawn_safe(trials, collector=lambda t, r: {})
        assert "collector" in str(err.value)

    def test_explicit_spawn_request_validates_loudly(self):
        grid = GridSpec(
            protocols=["2PC"], systems=[(4, 1)],
            delays=[("adversary", lambda seed: None)], seeds=range(8),
        )
        with pytest.raises(ConfigurationError) as err:
            run_sweep(grid, workers=2, start_method="spawn")
        assert "delays['adversary']" in str(err.value)

    def test_unknown_start_method_rejected(self):
        grid = GridSpec(protocols=["2PC"], systems=[(4, 1)], seeds=range(4))
        with pytest.raises(ConfigurationError):
            run_sweep(grid, workers=2, start_method="forkserver")


class TestSpawnExecution:
    def test_spawn_pool_reproduces_the_serial_sweep_exactly(self):
        serial = run_sweep(registry_grid(), workers=1)
        spawned = run_sweep(registry_grid(), workers=2, start_method="spawn")
        assert spawned.meta["start_method"] == "spawn"
        assert spawned.meta["mode"] == "parallel"
        assert spawned.fingerprint() == serial.fingerprint()
        assert spawned.aggregate_fingerprint() == serial.aggregate_fingerprint()

    def test_fork_remains_the_default_where_available(self):
        sweep = run_sweep(registry_grid(seeds=range(3)), workers=2)
        if sweep.meta["mode"] == "parallel":
            assert sweep.meta["start_method"] == "fork"


class TestDelayRegistry:
    def test_builtin_names(self):
        assert {"fixed", "uniform", "lognormal"} <= set(delay_model_names())

    def test_named_delay_builds_seeded_models(self):
        spec = named_delay("uniform", lo=0.5, hi=1.0)
        model = spec.factory(7)
        assert isinstance(model, UniformDelay)
        assert (model.lo, model.hi) == (0.5, 1.0)
        # per-trial seeding: same seed, same sequence
        a = spec.factory(7).delay(1, 2, None, 0.0)
        b = spec.factory(7).delay(1, 2, None, 0.0)
        assert a == b
        assert spec.label == "uniform(hi=1.0,lo=0.5)"
        heavy = named_delay("lognormal", label="tail").factory(3)
        assert isinstance(heavy, LognormalDelay)

    def test_unknown_delay_name_rejected(self):
        with pytest.raises(ConfigurationError):
            NamedDelayFactory("no-such-model", {})

    def test_factory_equality_feeds_cell_memoisation(self):
        assert NamedDelayFactory("fixed", {}) == NamedDelayFactory("fixed", {})
        assert NamedDelayFactory("fixed", {}) != NamedDelayFactory("uniform", {})


class TestReducerRegistry:
    def test_builtin_names(self):
        assert {"aggregate", "robustness", "violations"} <= set(reducer_names())

    def test_named_reducers_resolve(self):
        from repro.exp.results import RobustnessFold, SweepAggregate
        from repro.explore import ViolationFold

        assert isinstance(make_reducer("aggregate"), SweepAggregate)
        assert isinstance(make_reducer("robustness"), RobustnessFold)
        assert isinstance(make_reducer("violations"), ViolationFold)
        with pytest.raises(ConfigurationError):
            make_reducer("no-such-reducer")

    def test_named_reducer_through_run_sweep(self):
        fold = run_sweep(
            GridSpec(protocols=["2PC"], systems=[(4, 1)], seeds=range(5)),
            workers=1,
            reducer="robustness",
        )
        rows = fold.rows()
        assert rows and rows[0]["protocol"] == "2PC"
