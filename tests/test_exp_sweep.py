"""Tests for the experiment-sweep engine (:mod:`repro.exp`).

The three contract pillars:

* **same-seed determinism** — running the same grid twice produces identical
  results, down to the canonical fingerprint;
* **parallel == serial** — a multi-worker sweep reproduces the serial sweep's
  per-trial results and aggregates exactly;
* **registry-driven enumeration** — an unspecified protocol axis sweeps every
  protocol in :mod:`repro.protocols.registry`, and the failure-free trials
  confirm each one solves NBAC.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exp import (
    GridSpec,
    TrialSpec,
    all_yes,
    make_cases,
    run_sweep,
    run_trial,
    run_trials,
)
from repro.exp.results import _percentile
from repro.exp.spec import coerce_delay, coerce_fault, coerce_protocol, coerce_votes
from repro.protocols.inbac import INBAC
from repro.protocols.registry import all_protocols, get_protocol, protocol_names
from repro.sim.faults import DelayRule, FaultPlan
from repro.sim.network import UniformDelay


def stochastic_grid(seeds=(0, 1)):
    """A grid whose results depend on per-trial RNG state (UniformDelay)."""
    return GridSpec(
        protocols=["INBAC", "2PC", "PaxosCommit", "1NBAC"],
        systems=[(4, 1), (5, 2), (6, 2)],
        delays=[None, ("uniform", lambda seed: UniformDelay(0.2, 1.0, seed=seed))],
        faults=[None, ("crash P1", FaultPlan.crash(1, at=0.0))],
        seeds=list(seeds),
    )


# --------------------------------------------------------------------------- #
# grid expansion
# --------------------------------------------------------------------------- #
class TestGridSpec:
    def test_size_and_expansion(self):
        grid = stochastic_grid()
        assert grid.size == 4 * 3 * 2 * 2 * 1 * 2
        trials = grid.trials()
        assert len(trials) == grid.size
        assert [t.index for t in trials] == list(range(grid.size))

    def test_registry_driven_default_protocol_axis(self):
        grid = GridSpec(systems=[(5, 2)])
        labels = [coerce_protocol(p).label for p in grid.protocols]
        assert labels == protocol_names()

    def test_invalid_system_size_rejected(self):
        with pytest.raises(ConfigurationError):
            GridSpec(protocols=["INBAC"], systems=[(3, 3)])

    def test_duplicate_protocol_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            GridSpec(protocols=["INBAC", ("INBAC", INBAC)])

    def test_unknown_vote_pattern_rejected(self):
        with pytest.raises(ConfigurationError):
            GridSpec(protocols=["INBAC"], votes=["most-yes"])

    def test_derived_seed_is_order_independent(self):
        proto = coerce_protocol("INBAC")
        mk = lambda index, base: TrialSpec(
            index=index,
            protocol=proto,
            n=5,
            f=2,
            delay=coerce_delay(None),
            fault=coerce_fault(None),
            votes=coerce_votes("all-yes"),
            base_seed=base,
        )
        # the derived seed depends on coordinates + base seed, not the index
        assert mk(0, 7).derived_seed == mk(99, 7).derived_seed
        assert mk(0, 7).derived_seed != mk(0, 8).derived_seed

    def test_make_cases_joint_axes(self):
        trials = make_cases(
            [
                {"protocol": "INBAC", "n": 5, "f": 2, "votes": ("one-no", [1, 1, 0, 1, 1])},
                {"protocol": "INBAC", "n": 5, "f": 2, "fault": ("crash P1", FaultPlan.crash(1))},
            ]
        )
        assert [t.votes.label for t in trials] == ["one-no", "all-yes"]
        assert [t.fault.label for t in trials] == ["failure-free", "crash P1"]

    def test_make_cases_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            make_cases([{"protocol": "INBAC", "workers": 4}])


# --------------------------------------------------------------------------- #
# single trials
# --------------------------------------------------------------------------- #
class TestRunTrial:
    def test_nice_execution_measurements(self):
        trial = make_cases([{"protocol": "INBAC", "n": 5, "f": 2}])[0]
        result = run_trial(trial)
        assert result.error is None
        assert result.execution_class == "failure-free"
        assert result.all_committed
        assert result.solves_nbac()
        assert result.held_label() == "AVT"
        # nice-execution complexity matches the registry oracle
        info = get_protocol("INBAC")
        assert result.last_decision == info.expected_delays(5, 2)
        assert result.messages_main == info.expected_messages(5, 2)

    def test_fault_plan_state_not_shared_between_trials(self):
        # nth_match makes DelayRule stateful; a shared plan instance must be
        # rebuilt per trial or the second trial would see a spent counter
        plan = FaultPlan(
            delay_rules=[DelayRule(nth_match=0, delay=50.0)], description="first msg late"
        )
        grid = GridSpec(
            protocols=["2PC"], systems=[(4, 1)], faults=[("late-first", plan)], seeds=[0, 1]
        )
        first, second = run_sweep(grid, workers=1).trials
        assert first.last_decision == second.last_decision
        assert first.messages_total == second.messages_total

    def test_trial_error_is_captured_not_raised(self):
        trial = make_cases([{"protocol": "INBAC", "n": 5, "f": 2,
                             "votes": ("truncated", [1, 1])}])[0]
        result = run_trial(trial)
        assert result.error is not None and "ConfigurationError" in result.error

    def test_delay_model_instance_reseeded_per_trial(self):
        # the instance shorthand must not replay one RNG sequence across seeds
        grid = GridSpec(
            protocols=["2PC"],
            systems=[(4, 1)],
            delays=[UniformDelay(0.2, 1.0)],
            seeds=[0, 1, 2, 3],
        )
        sweep = run_sweep(grid, workers=1)
        assert not sweep.errors()
        assert len({tuple(t.decision_latencies) for t in sweep.trials}) > 1

    def test_factory_internal_typeerror_propagates(self):
        # a TypeError raised inside the factory body must not be mistaken for
        # a wrong-arity call (which would re-invoke the factory and mask it)
        def bad_factory(seed=0):
            raise TypeError("inner bug")

        spec = coerce_delay(("bad", bad_factory))
        with pytest.raises(TypeError, match="inner bug"):
            spec.factory(7)

    def test_percentile_is_nearest_rank(self):
        assert _percentile([1, 2, 3, 4, 5, 6], 50) == 3
        assert _percentile(list(range(1, 101)), 99) == 99
        assert _percentile([42], 99) == 42
        assert _percentile([], 50) is None

    def test_collector_attaches_extra(self):
        trial = make_cases([{"protocol": "INBAC", "n": 5, "f": 2}])[0]
        result = run_trial(trial, collector=lambda t, r: {"pids": sorted(r.processes)})
        assert result.extra == {"pids": [1, 2, 3, 4, 5]}


# --------------------------------------------------------------------------- #
# worker-count resolution
# --------------------------------------------------------------------------- #
class TestWorkerResolution:
    def tiny_grid(self):
        return GridSpec(protocols=["2PC"], systems=[(4, 1)])

    def test_env_override_is_honoured(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXP_WORKERS", "2")
        sweep = run_sweep(self.tiny_grid())
        assert sweep.meta["requested_workers"] is None
        assert not sweep.errors()

    def test_non_numeric_env_raises_configuration_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXP_WORKERS", "many")
        with pytest.raises(ConfigurationError, match="'many'"):
            run_sweep(self.tiny_grid())

    @pytest.mark.parametrize("value", ["-3", "0"])
    def test_non_positive_env_raises_configuration_error(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_EXP_WORKERS", value)
        with pytest.raises(ConfigurationError, match=value):
            run_sweep(self.tiny_grid())

    def test_non_positive_workers_argument_rejected(self):
        with pytest.raises(ConfigurationError, match="-2"):
            run_sweep(self.tiny_grid(), workers=-2)

    def test_non_numeric_workers_argument_rejected(self):
        with pytest.raises(ConfigurationError, match="'four'"):
            run_sweep(self.tiny_grid(), workers="four")

    def test_explicit_workers_bypass_env(self, monkeypatch):
        # an explicit argument must win over (and not be poisoned by) the env
        monkeypatch.setenv("REPRO_EXP_WORKERS", "garbage")
        sweep = run_sweep(self.tiny_grid(), workers=1)
        assert not sweep.errors()


# --------------------------------------------------------------------------- #
# determinism and parallel equivalence
# --------------------------------------------------------------------------- #
class TestDeterminism:
    def test_same_seed_sweeps_are_identical(self):
        sweep_a = run_sweep(stochastic_grid(), workers=1)
        sweep_b = run_sweep(stochastic_grid(), workers=1)
        assert not sweep_a.errors() and not sweep_b.errors()
        assert sweep_a.fingerprint() == sweep_b.fingerprint()
        assert sweep_a.aggregate_fingerprint() == sweep_b.aggregate_fingerprint()

    def test_different_base_seed_changes_stochastic_trials(self):
        sweep_a = run_sweep(stochastic_grid(seeds=(0,)), workers=1)
        sweep_b = run_sweep(stochastic_grid(seeds=(2,)), workers=1)
        a = [t for t in sweep_a.trials if t.delay_label == "uniform"]
        b = [t for t in sweep_b.trials if t.delay_label == "uniform"]
        assert [t.derived_seed for t in a] != [t.derived_seed for t in b]
        # at least one measurement differs across the reseeded trials
        assert any(
            x.decision_latencies != y.decision_latencies for x, y in zip(a, b)
        )

    def test_parallel_reproduces_serial_exactly(self):
        # >= 4 protocols x >= 3 (n, f) points, stochastic delays included
        serial = run_sweep(stochastic_grid(), workers=1)
        parallel = run_sweep(stochastic_grid(), workers=3)
        assert serial.meta["mode"] == "serial"
        if parallel.meta["mode"] != "parallel":
            pytest.skip("fork start method unavailable; parallel path not exercised")
        assert not parallel.errors()
        assert parallel.fingerprint() == serial.fingerprint()
        assert parallel.aggregate_fingerprint() == serial.aggregate_fingerprint()
        assert parallel.aggregate_rows() == serial.aggregate_rows()

    def test_parallel_handles_unpicklable_specs(self):
        # lambdas in predicates/factories must survive the pool boundary
        grid = GridSpec(
            protocols=["INBAC", "2PC", "PaxosCommit", "3PC"],
            systems=[(5, 2)],
            faults=[
                ("late tuples", FaultPlan(delay_rules=[
                    DelayRule(predicate=lambda p: isinstance(p, tuple), delay=30.0)])),
            ],
            votes=[("one-no", lambda n: [0] + [1] * (n - 1))],
        )
        serial = run_sweep(grid, workers=1)
        parallel = run_sweep(grid, workers=2)
        if parallel.meta["mode"] != "parallel":
            pytest.skip("fork start method unavailable; parallel path not exercised")
        assert parallel.fingerprint() == serial.fingerprint()


# --------------------------------------------------------------------------- #
# registry sweep and aggregation
# --------------------------------------------------------------------------- #
class TestRegistrySweep:
    def test_all_registry_protocols_solve_nbac_failure_free(self):
        grid = GridSpec(systems=[(4, 1), (5, 2), (6, 2)], max_time=400)
        sweep = run_sweep(grid)
        assert not sweep.errors(), [t.error for t in sweep.errors()]
        assert len(sweep) == len(all_protocols()) * 3
        for trial in sweep:
            assert trial.solves_nbac(), (trial.protocol, trial.n, trial.f)
            assert trial.all_committed
        # every registered protocol appears under its registry name
        assert {t.protocol for t in sweep} == set(protocol_names())

    def test_aggregate_rows_group_seeds(self):
        grid = GridSpec(protocols=["INBAC", "2PC"], systems=[(5, 2)], seeds=[0, 1, 2])
        sweep = run_sweep(grid, workers=1)
        rows = sweep.aggregate_rows()
        assert len(rows) == 2
        for row in rows:
            assert row["trials"] == 3
            assert row["commit_rate"] == 1.0
            assert row["properties"] == "AVT"
        by_protocol = {r["protocol"]: r for r in rows}
        # deterministic delays: INBAC decides in 2, the registry oracle agrees
        assert by_protocol["INBAC"]["mean_delays"] == 2.0
        assert by_protocol["INBAC"]["p99_latency"] == 2.0

    def test_robustness_rows_quantify_over_trials(self):
        grid = GridSpec(
            protocols=["2PC", "INBAC"],
            systems=[(5, 2)],
            faults=[None, ("crash P1@1", FaultPlan.crash(1, at=1.0))],
            max_time=400,
        )
        sweep = run_sweep(grid, workers=1)
        rows = {r["protocol"]: r for r in sweep.robustness_rows()}
        assert rows["INBAC"]["failure-free"] == "AVT"
        assert rows["INBAC"]["crash-failure"] == "AVT"
        # 2PC blocks when its coordinator crashes: termination lost
        assert "T" not in rows["2PC"]["crash-failure"]

    def test_select(self):
        sweep = run_sweep(GridSpec(protocols=["INBAC", "2PC"], systems=[(5, 2)]), workers=1)
        picked = sweep.select(protocol="2PC")
        assert len(picked) == 1 and picked[0].protocol == "2PC"
