"""Tests for the two trace levels of the simulation core.

The contract: ``trace_level="counters"`` (a :class:`repro.sim.trace.CounterTrace`)
never allocates a :class:`~repro.sim.trace.MessageRecord`, yet every
aggregate-level measurement — per-module message counts, decision times,
messages-received-by-deadline, property checks — answers byte-identically to
a full-trace run of the same execution.  Swept over a grid, that means
identical TrialResults, identical aggregate rows and identical
``SweepAggregate`` fingerprints across levels, serial and parallel, for bare
protocol trials and for cluster/workload trials alike.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.exp import GridSpec, make_cases, run_sweep, run_trial
from repro.sim.faults import FaultPlan
from repro.sim.network import UniformDelay
from repro.sim.runner import Scheduler, Simulation
from repro.sim.trace import CounterTrace, Trace
from repro.workloads import bank_transfer_workload


def stochastic_grid(seeds=(0, 1, 2), **overrides):
    params = dict(
        protocols=["INBAC", "2PC", "PaxosCommit"],
        systems=[(4, 1), (5, 2)],
        delays=[None, ("uniform", lambda seed: UniformDelay(0.2, 1.0, seed=seed))],
        faults=[None, ("crash P1", FaultPlan.crash(1, at=0.0))],
        seeds=list(seeds),
    )
    params.update(overrides)
    return GridSpec(**params)


def cluster_grid(**overrides):
    params = dict(
        protocols=["2PC", "INBAC"],
        systems=[(4, 1)],
        workloads=[
            ("bank", bank_transfer_workload(num_transfers=6, num_partitions=4, seed=13))
        ],
        seeds=[7, 8],
        max_time=2000.0,
    )
    params.update(overrides)
    return GridSpec(**params)


# --------------------------------------------------------------------------- #
# single executions: CounterTrace answers == Trace answers
# --------------------------------------------------------------------------- #
class TestCounterTrace:
    def run_both(self, **kwargs):
        from repro.protocols.inbac import INBAC

        params = dict(n=5, f=2, process_class=INBAC)
        params.update(kwargs)
        full = Simulation(trace_level="full", **params).run([1] * params["n"])
        fast = Simulation(trace_level="counters", **params).run([1] * params["n"])
        return full.trace, fast.trace

    def test_aggregate_queries_identical(self):
        full, fast = self.run_both()
        assert isinstance(full, Trace) and isinstance(fast, CounterTrace)
        assert fast.message_count() == full.message_count()
        assert fast.message_count(module="main") == full.message_count(module="main")
        assert fast.module_histogram() == full.module_histogram()
        assert fast.decisions.keys() == full.decisions.keys()
        assert fast.last_decision_time() == full.last_decision_time()
        assert fast.first_decision_time() == full.first_decision_time()
        assert fast.end_time == full.end_time
        last = full.last_decision_time()
        assert fast.messages_received_by(last) == full.messages_received_by(last)
        assert fast.messages_received_by(0.5) == full.messages_received_by(0.5)
        assert fast.correct_pids() == full.correct_pids()
        assert fast.summary() == full.summary()

    def test_crashes_and_proposals_recorded(self):
        full, fast = self.run_both(fault_plan=FaultPlan.crash(1, at=0.0), max_time=50)
        assert fast.crashes == full.crashes == {1: 0.0}
        assert fast.votes() == full.votes()

    def test_no_message_records_kept(self):
        _, fast = self.run_both()
        assert fast.messages == []
        assert fast.counted_total > 0

    def test_per_message_queries_raise(self):
        _, fast = self.run_both()
        for query in (
            fast.counted_messages,
            fast.messages_by_kind,
            fast.sends_by_process,
            fast.causal_depth,
        ):
            with pytest.raises(SimulationError, match="counters"):
                query()
        with pytest.raises(SimulationError):
            fast.messages_sent_by(2.0)
        with pytest.raises(SimulationError):
            fast.messages_received_by(2.0, module="main")

    def test_scheduler_inline_tallies_match_record_send(self):
        # Scheduler.post_message inlines CounterTrace.record_send on the hot
        # path; this guards the two implementations against drifting apart
        from repro.protocols.inbac import INBAC

        result = Simulation(
            n=5, f=2, process_class=INBAC, trace_level="counters"
        ).run([1] * 5)
        driven = result.trace
        replayed = CounterTrace(n=5, f=2)
        # replay the same message volume through the real method: counts and
        # digests must land in the same fields with the same values
        for time, count in driven.recv_time_counts.items():
            for _ in range(count):
                replayed.record_send(
                    msg_id=0, src=1, dst=2, payload=None,
                    send_time=0.0, recv_time=time, counted=True,
                )
        assert replayed.counted_total == driven.counted_total
        assert replayed.recv_time_counts == driven.recv_time_counts
        assert sum(driven.module_counts.values()) == driven.counted_total

    def test_property_checks_identical(self):
        from repro.core.checker import check_nbac

        full, fast = self.run_both()
        report_full = check_nbac(full)
        report_fast = check_nbac(fast)
        assert report_fast.solves_nbac() == report_full.solves_nbac() is True
        assert report_fast.satisfied_labels() == report_full.satisfied_labels()

    def test_scheduler_rejects_unknown_level(self):
        with pytest.raises(ConfigurationError, match="trace_level"):
            Scheduler(n=4, f=1, trace_level="audit")
        with pytest.raises(ConfigurationError, match="trace_level"):
            Simulation(n=4, f=1, process_class=object, trace_level="audit")


# --------------------------------------------------------------------------- #
# swept: TrialResults and aggregates identical across levels
# --------------------------------------------------------------------------- #
class TestSweepEquivalence:
    def test_run_trial_identical_across_levels(self):
        trials = make_cases(
            [
                {"protocol": "INBAC", "n": 5, "f": 2},
                {"protocol": "2PC", "n": 5, "f": 2,
                 "fault": ("crash P1", FaultPlan.crash(1, at=0.0)), "max_time": 50},
            ]
        )
        for trial in trials:
            full = run_trial(trial, trace_level="full")
            fast = run_trial(trial, trace_level="counters")
            assert full.error is None and fast.error is None
            assert dataclasses.asdict(fast) == dataclasses.asdict(full)

    def test_aggregate_fingerprints_identical_serial(self):
        full_level = run_sweep(
            stochastic_grid(), workers=1, mode="aggregate", trace_level="full"
        )
        counters = run_sweep(
            stochastic_grid(), workers=1, mode="aggregate", trace_level="counters"
        )
        in_memory = run_sweep(stochastic_grid(), workers=1)
        assert counters.aggregate_rows() == full_level.aggregate_rows()
        assert (
            counters.aggregate_fingerprint()
            == full_level.aggregate_fingerprint()
            == in_memory.aggregate_fingerprint()
        )
        assert counters.robustness_rows() == full_level.robustness_rows()

    def test_aggregate_fingerprints_identical_parallel(self):
        serial = run_sweep(
            stochastic_grid(), workers=1, mode="aggregate", trace_level="counters"
        )
        parallel = run_sweep(
            stochastic_grid(), workers=3, mode="aggregate", trace_level="counters"
        )
        if parallel.meta["mode"] != "parallel":
            pytest.skip("fork start method unavailable; parallel path not exercised")
        assert parallel.aggregate_fingerprint() == serial.aggregate_fingerprint()

    def test_cluster_trials_identical_across_levels(self):
        full_level = run_sweep(
            cluster_grid(), workers=1, mode="aggregate", trace_level="full"
        )
        counters = run_sweep(
            cluster_grid(), workers=1, mode="aggregate", trace_level="counters"
        )
        assert counters.error_count == full_level.error_count == 0
        assert counters.aggregate_rows() == full_level.aggregate_rows()
        assert counters.aggregate_fingerprint() == full_level.aggregate_fingerprint()

    def test_full_sweep_mode_identical_across_levels(self):
        # mode="full" materialises TrialResults; the per-trial fingerprint
        # (not just the aggregate one) must match across levels
        a = run_sweep(stochastic_grid(seeds=(0,)), workers=1, trace_level="full")
        b = run_sweep(stochastic_grid(seeds=(0,)), workers=1, trace_level="counters")
        assert b.fingerprint() == a.fingerprint()


# --------------------------------------------------------------------------- #
# defaults and precedence
# --------------------------------------------------------------------------- #
class TestLevelSelection:
    def tiny(self, **overrides):
        return stochastic_grid(seeds=(0,), protocols=["2PC"], systems=[(4, 1)],
                               delays=[None], faults=[None], **overrides)

    def test_aggregate_mode_defaults_to_counters(self):
        agg = run_sweep(self.tiny(), workers=1, mode="aggregate")
        assert agg.meta["trace_level"] == "counters"

    def test_full_mode_defaults_to_full(self):
        sweep = run_sweep(self.tiny(), workers=1)
        assert sweep.meta["trace_level"] == "full"

    def test_collector_keeps_full_traces_in_aggregate_mode(self):
        seen = []

        def collector(trial, result):
            seen.append(type(result.trace).__name__)
            return {}

        agg = run_sweep(self.tiny(), workers=1, mode="aggregate", collector=collector)
        assert agg.meta["trace_level"] == "full"
        assert seen == ["Trace"]

    def test_grid_pin_beats_engine_default(self):
        agg = run_sweep(
            self.tiny(trace_level="full"), workers=1, mode="aggregate"
        )
        # the pin decides what the scheduler builds, and meta reports the
        # level the trials actually ran at — not the engine's default
        assert agg.error_count == 0
        assert agg.meta["trace_level"] == "full"

    def test_override_reflected_in_meta(self):
        sweep = run_sweep(self.tiny(), workers=1, trace_level="counters")
        assert sweep.meta["trace_level"] == "counters"

    def test_run_sweep_override_beats_grid_pin(self):
        seen = []

        def collector(trial, result):
            seen.append(type(result.trace).__name__)
            return {}

        run_sweep(
            self.tiny(trace_level="counters"),
            workers=1,
            trace_level="full",
            collector=collector,
        )
        assert seen == ["Trace"]

    def test_grid_pin_reaches_the_scheduler(self):
        seen = []

        def collector(trial, result):
            seen.append(type(result.trace).__name__)
            return {}

        run_sweep(self.tiny(trace_level="counters"), workers=1, collector=collector)
        assert seen == ["CounterTrace"]

    def test_collector_failure_on_counters_pin_is_captured_per_trial(self):
        # a counters pin wins over the collector-keeps-full-traces default;
        # a collector that then touches per-message queries fails *per trial*
        # (TrialResult.error), never aborting the sweep
        def needs_messages(trial, result):
            return {"kinds": result.trace.messages_by_kind()}

        agg = run_sweep(
            self.tiny(trace_level="counters"),
            workers=1,
            mode="aggregate",
            collector=needs_messages,
        )
        assert agg.error_count == len(agg)
        assert "SimulationError" in agg.sample_errors[0]

    def test_unknown_levels_rejected_everywhere(self):
        with pytest.raises(ConfigurationError, match="trace_level"):
            GridSpec(protocols=["2PC"], systems=[(4, 1)], trace_level="audit")
        with pytest.raises(ConfigurationError, match="trace_level"):
            run_sweep(self.tiny(), workers=1, trace_level="audit")
        with pytest.raises(ConfigurationError, match="trace_level"):
            make_cases([{"protocol": "2PC", "n": 4, "f": 1, "trace_level": "audit"}])

    def test_trace_level_does_not_change_derived_seeds(self):
        # the level must stay out of TrialSpec.key(): the same grid swept at
        # either level replays the exact same per-trial seeds
        plain = GridSpec(protocols=["2PC"], systems=[(4, 1)], seeds=[0, 1])
        pinned = GridSpec(
            protocols=["2PC"], systems=[(4, 1)], seeds=[0, 1], trace_level="counters"
        )
        assert [t.derived_seed for t in plain.trials()] == [
            t.derived_seed for t in pinned.trials()
        ]
