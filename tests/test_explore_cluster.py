"""Adversarial exploration over the transaction cluster (PR 5 tentpole).

Covers the `schedules x workloads` grid end-to-end: schedule controllers
threaded through the db stack, the cluster-invariant battery mapped onto the
property flags, the ``cluster-anomaly`` preset, counterexample shrinking, and
the determinism guarantees (no-op controllers perturb nothing; fingerprints
are identical across trace levels, fold paths and worker counts).
"""

from __future__ import annotations

import dataclasses

import pytest

from broken_protocols import SplitBrainCommit
from repro.errors import ConfigurationError
from repro.exp import GridSpec, run_sweep, run_trial
from repro.exp.spec import make_cases
from repro.explore import (
    EXPLORATION_PRESETS,
    ScheduleTrace,
    explore,
    replay_trial,
)

#: a small contended workload: 4 transactions, 3 participants each, so the
#: split-brain bug has a non-crashed participant to mis-commit on
UNIFORM = ("uniform3", "uniform", {"transactions": 4})


def cluster_grid(schedules, seeds=(0,), protocol="2PC", max_time=150.0):
    return GridSpec(
        protocols=[protocol],
        systems=[(3, 1)],
        workloads=[UNIFORM],
        schedules=schedules,
        seeds=list(seeds),
        max_time=max_time,
    )


class TestScheduleWorkloadGrid:
    def test_controlled_cluster_trial_records_replayable_extras(self):
        trial = cluster_grid([("rw", "random-walk", {"defer_prob": 0.3})]).trials()[0]
        result = run_trial(trial, trace_level="full")
        assert result.error is None
        assert result.workload_label == "uniform3"
        assert result.schedule_label == "rw"
        assert result.extra["schedule_trace"]["strategy"] == "random-walk"
        assert result.extra["trace_fingerprint"]

    def test_noop_controller_changes_no_measurement(self):
        # a timestamp-order controller must be invisible: every measured
        # field of the cluster trial is identical to the uncontrolled run
        plain = run_trial(cluster_grid([None]).trials()[0], trace_level="full")
        controlled = run_trial(
            cluster_grid([("ts", "timestamp-order", {})]).trials()[0],
            trace_level="full",
        )
        assert controlled.error is None and plain.error is None
        assert controlled.extra["schedule_trace"]["decisions"] == []
        for attr in (
            "decisions", "decision_latencies", "first_decision", "last_decision",
            "messages_total", "messages_main", "messages_until_last_decision",
            "agreement", "validity", "termination", "execution_class",
        ):
            assert getattr(controlled, attr) == getattr(plain, attr), attr

    def test_noop_controller_aggregates_match_modulo_schedule_columns(self):
        def strip(rows):
            return [
                {k: v for k, v in row.items() if k not in ("schedule", "violations")}
                for row in rows
            ]

        plain = run_sweep(cluster_grid([None], seeds=range(3)), workers=1,
                          mode="aggregate")
        noop = run_sweep(
            cluster_grid([("ts", "timestamp-order", {})], seeds=range(3)),
            workers=1, mode="aggregate",
        )
        assert strip(plain.aggregate_rows()) == strip(noop.aggregate_rows())

    def test_fingerprints_identical_across_levels_folds_and_workers(self):
        grid = lambda: cluster_grid(
            [None, ("rw", "random-walk", {"defer_prob": 0.2, "crash_prob": 0.1})],
            seeds=range(4),
        )
        reference = run_sweep(grid(), workers=1, mode="aggregate",
                              trace_level="full", fold="trial")
        for trace_level in ("full", "counters"):
            for fold in ("trial", "chunk"):
                for workers in (1, 2):
                    if fold == "chunk" and workers == 1:
                        continue  # serial runs always fold per trial
                    variant = run_sweep(
                        grid(), workers=workers, mode="aggregate",
                        trace_level=trace_level, fold=fold,
                    )
                    assert (
                        variant.aggregate_fingerprint()
                        == reference.aggregate_fingerprint()
                    ), (trace_level, fold, workers)

    def test_parallel_full_mode_reproduces_serial(self):
        serial = run_sweep(cluster_grid(["random-walk"], seeds=range(4)), workers=1)
        parallel = run_sweep(cluster_grid(["random-walk"], seeds=range(4)), workers=2)
        assert serial.fingerprint() == parallel.fingerprint()

    def test_derived_seed_is_schedule_invariant_for_cluster_trials(self):
        plain, controlled = cluster_grid([None, "random-walk"]).trials()
        assert plain.derived_seed == controlled.derived_seed
        assert plain.workload_label == controlled.workload_label

    def test_make_cases_accepts_workload_plus_schedule(self):
        trial = make_cases(
            [{
                "protocol": "2PC", "n": 3, "f": 1, "workload": UNIFORM,
                "schedule": ("cp", "crash-point", {"pid": 1, "point": 0}),
                "max_time": 150.0,
            }]
        )[0]
        result = run_trial(trial, trace_level="full")
        assert result.error is None
        assert result.execution_class == "crash-failure"


class TestClusterAnomalyHunt:
    def test_split_brain_is_found_and_shrunk_to_one_decision(self):
        report = explore(
            ("SplitBrain2PC", SplitBrainCommit), n=3, f=1, budget=24,
            workload=UNIFORM, preset="cluster-anomaly", max_time=150.0,
        )
        assert not report.errors, report.errors[:1]
        assert report.strategy == "cluster-anomaly"
        assert report.meta["preset"] == "cluster-anomaly"
        violations = report.violations_of("agreement")
        assert violations, "the atomicity violation was not found"
        hit = violations[0]
        # the invariant detail names the split transaction
        assert any("committed on partitions" in d for d in hit.details)
        # 1-minimal: a single crash decision suffices
        assert hit.shrunk is not None and len(hit.shrunk) == 1
        assert hit.shrunk.decisions[0][1] == "crash"

    def test_shrunk_cluster_counterexample_replays_byte_identically(self):
        report = explore(
            ("SplitBrain2PC", SplitBrainCommit), n=3, f=1, budget=24,
            workload=UNIFORM, preset="cluster-anomaly", max_time=150.0,
        )
        hit = report.violations_of("agreement")[0]
        grid = cluster_grid(
            [("cp", "crash-point", {})], seeds=[hit.base_seed],
            protocol=("SplitBrain2PC", SplitBrainCommit),
        )
        stored = ScheduleTrace.from_json(hit.shrunk.to_json())
        replays = [replay_trial(grid.trials()[0], stored) for _ in range(2)]
        assert {r.extra["trace_fingerprint"] for r in replays} == {
            hit.shrunk_fingerprint
        }
        assert all(not r.agreement for r in replays)

    @pytest.mark.parametrize("protocol", ["2PC", "INBAC", "PaxosCommit"])
    def test_real_protocols_pass_the_battery_clean(self, protocol):
        report = explore(
            protocol, n=3, f=1, budget=16,
            workload=UNIFORM, preset="cluster-anomaly", max_time=150.0,
        )
        assert not report.errors, report.errors[:1]
        assert report.violation_count == 0, [v.describe() for v in report.violations]

    def test_random_walk_over_cluster_is_clean_for_inbac(self):
        report = explore(
            "INBAC", n=3, f=1, budget=10, strategy="random-walk",
            workload=("bank", "bank-transfer", {"transactions": 4}),
            max_time=150.0,
        )
        assert not report.errors, report.errors[:1]
        assert report.violation_count == 0

    def test_termination_hunt_finds_blocking_2pc_in_the_cluster(self):
        # opting into termination: crashing the embedded 2PC coordinator (or
        # the client) leaves transactions unfinished, and the schedule shrinks
        # to a single crash decision
        report = explore(
            "2PC", n=3, f=1, budget=16,
            workload=UNIFORM, preset="cluster-anomaly",
            properties=("termination",), max_time=150.0,
        )
        assert not report.errors, report.errors[:1]
        violations = report.violations_of("termination")
        assert violations
        assert len(violations[0].shrunk) == 1

    def test_invariant_alias_property_names(self):
        report = explore(
            ("SplitBrain2PC", SplitBrainCommit), n=3, f=1, budget=24,
            workload=UNIFORM, preset="cluster-anomaly",
            properties=("atomicity",), max_time=150.0,
        )
        assert report.violation_count > 0

    def test_preset_validation(self):
        assert "cluster-anomaly" in EXPLORATION_PRESETS
        with pytest.raises(ConfigurationError) as err:
            explore("2PC", n=3, f=1, budget=4, preset="cluster-anomaly")
        assert "workload=" in str(err.value)
        with pytest.raises(ConfigurationError) as err:
            explore("2PC", n=3, f=1, budget=4, workload=UNIFORM, preset="nope")
        assert "cluster-anomaly" in str(err.value)
        # a preset replaces the strategy: combining the two must be loud
        with pytest.raises(ConfigurationError) as err:
            explore(
                "2PC", n=3, f=1, budget=4, workload=UNIFORM,
                preset="cluster-anomaly", strategy="delay-reorder",
            )
        assert "cannot be combined" in str(err.value)

    def test_malformed_workload_params_rejected(self):
        with pytest.raises(ConfigurationError) as err:
            GridSpec(
                protocols=["2PC"], systems=[(3, 1)],
                workloads=[("w", "uniform", 4)],  # params must be a dict
            )
        assert "params_dict" in str(err.value)

    def test_violation_reducer_streams_cluster_schedule_cells(self):
        # huge cluster budgets can stream through reducer="violations": the
        # 8-coordinate explored-cluster keys (workload + schedule) fold into
        # per-cell tallies, and the broken fixture's cells carry the counts
        fold = run_sweep(
            cluster_grid(
                [None, ("cp2", "crash-point", {"pid": 2, "point": 4})],
                seeds=range(2),
                protocol=("SplitBrain2PC", SplitBrainCommit),
            ),
            workers=1,
            reducer="violations",
        )
        assert fold.error_count == 0
        rows = {row["schedule"]: row for row in fold.rows()}
        assert rows["-"]["workload"] == "uniform3"
        assert rows["-"]["violations"] == 0
        assert rows["cp2"]["violations"] == 2
        assert rows["cp2"]["broke_A"] == 2  # atomicity lives in the A slot
        assert fold.samples and "schedule_trace" in fold.samples[0]

    def test_preset_covers_every_process_point_major(self):
        from repro.explore.driver import _cluster_anomaly_specs

        specs, seeds = _cluster_anomaly_specs(8, n=3)
        assert seeds == [0]
        assert len(specs) == 8
        # the first n+1 specs hit every partition and the client at point 0
        first_round = [s.strategy_params() for s in specs[:4]]
        assert [p["pid"] for p in first_round] == [1, 2, 3, 4]
        assert all(p["point"] == 0 for p in first_round)
        labels = [s.label for s in specs]
        assert len(set(labels)) == len(labels)
