"""Tests for the exploration driver: search, cell-aware checking, shrinking."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exp import GridSpec, run_sweep
from repro.explore import ScheduleTrace, ViolationFold, explore, replay_trial
from repro.protocols.registry import all_protocols


class TestTwoPhaseCommitCounterexample:
    def test_random_walk_finds_and_shrinks_coordinator_crash(self):
        report = explore("2PC", n=5, f=2, budget=60, strategy="random-walk", seed=3)
        assert report.found
        assert not report.errors
        violations = report.violations_of("termination")
        assert violations
        first = violations[0]
        assert first.execution_class == "crash-failure"
        assert first.shrunk is not None
        # the minimal counterexample is tiny: the coordinator crash alone
        # blocks 2PC, so shrinking must land well under 5 decisions
        assert len(first.shrunk) <= 5
        kinds = {kind for _, kind, _ in first.shrunk.decisions}
        assert "crash" in kinds
        assert any(arg == 1 for _, kind, arg in first.shrunk.decisions if kind == "crash")
        assert first.shrunk_fingerprint is not None

    def test_crash_point_enumeration_finds_it_with_one_decision(self):
        report = explore("2PC", n=5, f=2, budget=20, strategy="crash-point")
        violations = report.violations_of("termination")
        assert violations
        assert all(len(v.schedule) == 1 for v in violations)
        assert all(kind == "crash" for v in violations
                   for _, kind, _ in v.schedule.decisions)

    def test_explicit_crash_point_runs_exactly_one_schedule(self):
        # crash-point is seed-insensitive: repeating one point across the
        # whole budget would re-run identical executions
        report = explore(
            "2PC", n=5, f=2, budget=200, strategy="crash-point",
            params={"pid": 1, "point": 5},
        )
        assert report.schedules_run == 1
        assert report.violations_of("termination")

    def test_property_filter_restricts_the_hunt(self):
        report = explore(
            "2PC", n=5, f=2, budget=40, strategy="random-walk", seed=3,
            properties=("agreement",),
        )
        # 2PC never loses agreement, so an agreement-only hunt stays empty
        assert not report.found

    def test_summary_row_shape(self):
        report = explore("2PC", n=5, f=2, budget=30, strategy="random-walk", seed=3)
        row = report.summary_row()
        assert row["protocol"] == "2PC"
        assert row["violations"] == report.violation_count
        assert row["violated"] == "termination"
        assert row["min_counterexample"] <= 5


class TestIndulgentProtocolsSurvive:
    @pytest.mark.parametrize("name", ["INBAC", "PaxosCommit", "(2n-2+f)NBAC"])
    def test_no_violations_within_resilience_bound(self, name):
        report = explore(name, n=5, f=2, budget=50, strategy="random-walk", seed=11)
        assert not report.errors
        assert report.violation_count == 0, [v.describe() for v in report.violations]


class TestExplorationBattery:
    """Every registered protocol, checked against its own problem cell."""

    def test_cell_aware_battery_over_the_whole_registry(self):
        for name, info in sorted(all_protocols().items()):
            report = explore(
                name, n=5, f=2, budget=30, strategy="random-walk", seed=5,
                cell=info.cell,
            )
            assert not report.errors, (name, report.errors[:1])
            if info.cell is None:
                # 2PC (the only cell-less protocol) is blocking by design:
                # exploration must expose the termination violation
                assert report.violations_of("termination"), name
            else:
                # a protocol must deliver whatever its cell requires for the
                # execution class each explored schedule produced
                assert report.violation_count == 0, (
                    name, [v.describe() for v in report.violations[:2]]
                )

    def test_deferrals_scale_with_the_delay_bound(self):
        # with U = 10, deferral magnitudes must scale with the bound so
        # exploration still reaches delays beyond U: the walk must produce
        # network-failure executions, not just sub-bound jitter
        from repro.exp import named_delay

        sweep = run_sweep(
            GridSpec(
                protocols=["1NBAC"],
                systems=[(4, 1)],
                delays=[named_delay("uniform", lo=3.0, hi=9.0, u=10.0)],
                schedules=[("rw", "random-walk",
                            {"defer_prob": 0.5, "crash_prob": 0.0})],
                seeds=range(20),
                max_time=400,
                trace_level="full",
            ),
            workers=1,
        )
        assert not sweep.errors()
        classes = {t.execution_class for t in sweep}
        assert "network-failure" in classes

    def test_delay_reorder_battery_stays_admissible(self):
        for name in ("INBAC", "1NBAC", "avNBAC"):
            info = all_protocols()[name]
            report = explore(
                name, n=5, f=2, budget=25, strategy="delay-reorder",
                params={"k": 3}, seed=2, cell=info.cell,
            )
            assert not report.errors
            assert report.violation_count == 0, name


class TestReplayDeterminism:
    def test_replay_matches_serial_and_pool_execution(self):
        grid = GridSpec(
            protocols=["2PC"],
            systems=[(5, 2)],
            schedules=[("rw", "random-walk", {"crash_prob": 0.1})],
            seeds=range(12),
            trace_level="full",
        )
        serial = run_sweep(grid, workers=1)
        pooled = run_sweep(grid, workers=3)
        fp_serial = [t.extra["trace_fingerprint"] for t in serial]
        fp_pooled = [t.extra["trace_fingerprint"] for t in pooled]
        assert fp_serial == fp_pooled
        for trial, result in zip(grid.trials(), serial):
            stored = ScheduleTrace.from_jsonable(result.extra["schedule_trace"])
            replayed = replay_trial(trial, stored)
            assert replayed.error is None
            assert (
                replayed.extra["trace_fingerprint"]
                == result.extra["trace_fingerprint"]
            )

    def test_explore_is_deterministic_across_worker_counts(self):
        kwargs = dict(budget=30, strategy="random-walk", seed=9)
        serial = explore("2PC", n=5, f=2, workers=1, shrink=False, **kwargs)
        pooled = explore("2PC", n=5, f=2, workers=3, shrink=False, **kwargs)
        assert [v.fingerprint for v in serial.violations] == [
            v.fingerprint for v in pooled.violations
        ]
        assert [v.schedule for v in serial.violations] == [
            v.schedule for v in pooled.violations
        ]


class TestViolationFoldReducer:
    def test_streaming_violation_counts_match_full_mode(self):
        grid = lambda: GridSpec(
            protocols=["2PC", "INBAC"],
            systems=[(5, 2)],
            schedules=[("rw", "random-walk", {"crash_prob": 0.1})],
            seeds=range(25),
            trace_level="full",
        )
        fold = run_sweep(grid(), workers=1, reducer="violations")
        assert isinstance(fold, ViolationFold)
        full = run_sweep(grid(), workers=1)
        expected = sum(1 for t in full if not t.solves_nbac())
        assert fold.total_violations == expected
        rows = {r["protocol"]: r for r in fold.rows()}
        assert rows["INBAC"]["violations"] == 0
        assert rows["2PC"]["violations"] > 0
        assert rows["2PC"]["broke_T"] == rows["2PC"]["violations"]
        # retained samples replay: they carry the full schedule trace
        assert fold.samples
        assert all("schedule_trace" in s for s in fold.samples)


class TestDriverValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            explore("2PC", n=5, f=2, budget=0)

    def test_unknown_property_rejected(self):
        with pytest.raises(ConfigurationError):
            explore("2PC", n=5, f=2, budget=5, properties=("liveness",))

    def test_unknown_strategy_surfaces_as_trial_errors(self):
        report = explore("2PC", n=5, f=2, budget=3, strategy="no-such")
        assert report.errors
        assert "unknown schedule strategy" in report.errors[0]
