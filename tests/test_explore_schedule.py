"""Tests for the scheduler's controller hook and the schedule primitives."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exp import GridSpec, run_sweep
from repro.explore import (
    RandomWalk,
    ReplayController,
    ScheduleController,
    ScheduleTrace,
    TimestampOrder,
    make_strategy,
)
from repro.protocols.two_phase import TwoPhaseCommit
from repro.sim.faults import DelayRule, FaultPlan
from repro.sim.runner import Simulation

#: aggregate + trial fingerprints of a reference grid, captured on the
#: pre-schedule-axis code: the default timestamp-order path must keep
#: producing exactly these bytes (tentpole guard)
GOLDEN_GRID = dict(
    protocols=["INBAC", "2PC", "PaxosCommit"],
    systems=[(5, 2)],
    votes=["all-yes", "all-no"],
    seeds=range(5),
)
GOLDEN_AGGREGATE = "50608b476d686326e4c9cf329f76dbf0620c0afbf5ba4a695ea660c7af414b58"
GOLDEN_TRIALS = "cf7c520271db3e0c62c6dec0b9bd712d735cb822492f9b04f9aec82370eb321a"


def run_2pc(controller=None, n=5, f=2, trace_level="full", fault_plan=None, votes=None):
    sim = Simulation(
        n=n, f=f, process_class=TwoPhaseCommit,
        fault_plan=fault_plan, trace_level=trace_level,
    )
    return sim.run(votes if votes is not None else [1] * n, controller=controller)


class TestDefaultPathUnchanged:
    def test_golden_fingerprints_of_uncontrolled_sweep(self):
        sweep = run_sweep(GridSpec(**GOLDEN_GRID), workers=1)
        assert sweep.aggregate_fingerprint() == GOLDEN_AGGREGATE
        assert sweep.fingerprint() == GOLDEN_TRIALS

    def test_no_controller_equals_timestamp_order_equals_inert_walk(self):
        baseline = run_2pc().trace.fingerprint()
        identity = run_2pc(TimestampOrder()).trace.fingerprint()
        inert = run_2pc(
            RandomWalk(seed=7, defer_prob=0.0, crash_prob=0.0)
        ).trace.fingerprint()
        assert baseline == identity == inert

    def test_uncontrolled_metadata_has_no_schedule_decisions(self):
        trace = run_2pc().trace
        assert "schedule_decisions" not in trace.metadata
        assert trace.metadata["execution_class"] == "failure-free"


class CrashAt(ScheduleController):
    """Test controller: crash one pid at a fixed intercept step."""

    strategy_name = "test-crash-at"

    def __init__(self, step, pid, seed=0):
        super().__init__(seed=seed, step=step, pid=pid)
        self._step = step
        self._pid = pid

    def intercept(self, scheduler, event, step):
        if step == self._step:
            return ("crash", self._pid)
        return None


class DeferAt(ScheduleController):
    """Test controller: defer the event at a fixed intercept step."""

    strategy_name = "test-defer-at"

    def __init__(self, step, extra, seed=0):
        super().__init__(seed=seed, step=step, extra=extra)
        self._step = step
        self._extra = extra

    def intercept(self, scheduler, event, step):
        if step == self._step:
            return ("defer", self._extra)
        return None


class TestCrashInjection:
    def test_injected_crash_recorded_and_class_upgraded(self):
        # step 9 is the coordinator's collect timer in a 5-process 2PC run
        result = run_2pc(CrashAt(step=9, pid=1))
        trace = result.trace
        assert 1 in trace.crashes
        assert trace.metadata["execution_class"] == "crash-failure"
        assert trace.metadata["schedule_decisions"] == [(9, "crash", 1)]
        # the classic blocking scenario: participants never decide
        assert 1 not in trace.decisions
        assert len(trace.decisions) < 4

    def test_budget_never_exceeds_f(self):
        class CrashEverything(ScheduleController):
            strategy_name = "test-crash-everything"

            def intercept(self, scheduler, event, step):
                return ("crash", (step % scheduler.n) + 1)

        result = run_2pc(CrashEverything(), n=5, f=2)
        assert len(result.trace.crashes) <= 2

    def test_budget_accounts_for_fault_plan_crashes(self):
        plan = FaultPlan.crashes_at({4: 0.0, 5: 0.0})
        result = run_2pc(CrashAt(step=3, pid=1), fault_plan=plan, n=5, f=2)
        # the plan spends the whole budget; the injection must be refused
        assert set(result.trace.crashes) == {4, 5}
        assert result.trace.metadata["schedule_decisions"] == []

    def test_crashing_a_plan_doomed_pid_is_refused(self):
        plan = FaultPlan.crash(1, at=5.0)
        result = run_2pc(CrashAt(step=0, pid=1), fault_plan=plan, n=5, f=2)
        assert result.trace.metadata["schedule_decisions"] == []


class TestDeferral:
    def test_defer_updates_record_and_execution_class(self):
        baseline = run_2pc().trace
        result = run_2pc(DeferAt(step=5, extra=2.5))
        trace = result.trace
        assert trace.metadata["execution_class"] == "network-failure"
        assert trace.metadata["schedule_decisions"] == [(5, "defer", 2.5)]
        # exactly one message arrives 2.5 units later than its twin would
        deferred = [
            m for m in trace.messages if m.counted and m.recv_time - m.send_time > 1.0
        ]
        assert len(deferred) == 1
        assert deferred[0].recv_time == pytest.approx(1.0 + 2.5)
        assert trace.message_count() == baseline.message_count()

    def test_small_defer_within_bound_keeps_failure_free_class(self):
        # deferring by less than the slack to the bound is not a failure;
        # use a sub-bound delay so there is slack to defer within
        from repro.sim.network import FixedDelay

        sim = Simulation(
            n=4, f=1, process_class=TwoPhaseCommit, delay_model=FixedDelay(1.0),
        )
        # FixedDelay(1.0) has no slack: every deferral exceeds U, so assert
        # the opposite branch — the class upgrade is driven by the bound
        result = sim.run([1] * 4, controller=DeferAt(step=4, extra=0.5))
        assert result.trace.metadata["execution_class"] == "network-failure"

    def test_counters_level_digest_tracks_deferral(self):
        full = run_2pc(DeferAt(step=5, extra=2.5), trace_level="full").trace
        counters = run_2pc(DeferAt(step=5, extra=2.5), trace_level="counters").trace
        for deadline in (1.0, 2.0, 3.0, 3.5, 4.0):
            assert counters.messages_received_by(deadline) == full.messages_received_by(
                deadline
            ), deadline

    def test_defer_of_timer_is_ignored(self):
        # step 9 is the collect timer: deferring it must be refused
        result = run_2pc(DeferAt(step=9, extra=2.0))
        assert result.trace.metadata["schedule_decisions"] == []
        assert result.trace.metadata["execution_class"] == "failure-free"

    def test_nonpositive_defer_is_ignored(self):
        result = run_2pc(DeferAt(step=5, extra=0.0))
        assert result.trace.metadata["schedule_decisions"] == []


class TestReplay:
    def test_replay_reproduces_random_walk_byte_identically(self):
        walk = RandomWalk(seed=123, defer_prob=0.3, crash_prob=0.1)
        original = run_2pc(walk)
        decisions = original.trace.metadata["schedule_decisions"]
        replayed = run_2pc(ReplayController(decisions=decisions))
        assert replayed.trace.fingerprint() == original.trace.fingerprint()
        assert replayed.trace.metadata["schedule_decisions"] == decisions

    def test_schedule_trace_json_round_trip(self):
        trace = ScheduleTrace(
            strategy="random-walk",
            seed=9,
            params={"defer_prob": 0.2},
            decisions=[(3, "defer", 1.5), (7, "crash", 2)],
        )
        back = ScheduleTrace.from_json(trace.to_json())
        assert back == trace
        assert len(back) == 2
        assert back.without_decision(0).decisions == [(7, "crash", 2)]
        assert "crash P2" in back.describe()[1]

    def test_unknown_decision_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ScheduleTrace(strategy="x", decisions=[(0, "drop", 1)])

    def test_unknown_action_from_controller_raises(self):
        class Bad(ScheduleController):
            def intercept(self, scheduler, event, step):
                return ("teleport", 3)

        with pytest.raises(ConfigurationError):
            run_2pc(Bad())

    def test_make_strategy_registry(self):
        walk = make_strategy("random-walk", seed=4, defer_prob=0.5)
        assert isinstance(walk, RandomWalk)
        with pytest.raises(ConfigurationError):
            make_strategy("no-such-strategy")


class TestDelayRuleReset:
    def test_fault_plan_reused_across_runs_keeps_matching(self):
        # regression: _matches_seen was never reset, so a plan reused across
        # runs (e.g. via a per-cell cached Simulation) silently stopped
        # matching nth_match rules after the first trial
        plan = FaultPlan(
            delay_rules=[DelayRule(nth_match=0, delay=50.0)],
            description="first msg late",
        )
        sim = Simulation(n=4, f=1, process_class=TwoPhaseCommit, max_time=400)
        first = sim.run([1] * 4, fault_plan=plan)
        second = sim.run([1] * 4, fault_plan=plan)
        assert first.trace.fingerprint() == second.trace.fingerprint()
        late = [m for m in second.trace.messages if m.recv_time - m.send_time >= 50.0]
        assert len(late) == 1

    def test_rule_reset_clears_match_counter(self):
        rule = DelayRule(nth_match=1, delay=9.0)
        assert rule.apply(1, 2, None, 0.0, 0, 1.0) is None
        assert rule.apply(1, 2, None, 0.0, 1, 1.0) == 9.0
        rule.reset()
        assert rule.apply(1, 2, None, 0.0, 0, 1.0) is None
        assert rule.apply(1, 2, None, 0.0, 1, 1.0) == 9.0
