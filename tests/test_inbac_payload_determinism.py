"""Fingerprint regression tests for the INBAC payload canonicalisation fix.

INBAC's help protocol used to ship ``collection0``/``collection1`` as bare
``frozenset`` values inside ``HELPED`` and phase-0 ``C`` acks, and folded
``backed_up``/``collections`` sets in hash order when merging vote
collections.  A set's repr order is implementation-defined (and
``PYTHONHASHSEED``-dependent for str elements), and ``Trace._canonical``
serialises payloads via ``repr`` — so full-level fingerprints of help-path
executions could differ across processes.  The payloads are now
``tuple(sorted(...))`` and the folds iterate ``sorted(...)``; these tests pin
the resulting bytes.
"""

from __future__ import annotations

from repro.lint.sanitizer import _find_unordered
from repro.protocols import INBAC
from repro.sim import FaultPlan, Simulation

N, F = 5, 2

#: both backups crash at 0 — outsiders get no ack, ask for HELP, and the
#: survivors answer with their (previously frozenset-valued) collections
HELP_PATH_PLAN = {1: 0.0, 2: 0.0}

#: byte-pinned fingerprint of the help-path execution below; identical under
#: every PYTHONHASHSEED because no payload repr depends on hash order anymore
GOLDEN_HELP_PATH = "f88e795f8c2f58ae014f0a4fd23bded783f46ae86f2b152b469a79e023debe30"


def run_help_path():
    sim = Simulation(
        n=N,
        f=F,
        process_class=INBAC,
        fault_plan=FaultPlan.crashes_at(HELP_PATH_PLAN),
        seed=3,
    )
    return sim.run(votes=[1] * N)


class TestHelpPathPayloads:
    def test_help_path_is_exercised(self):
        trace = run_help_path().trace
        kinds = {m.payload[0] for m in trace.messages if isinstance(m.payload, tuple)}
        assert {"HELP", "HELPED", "C"} <= kinds

    def test_no_unordered_value_in_any_payload(self):
        trace = run_help_path().trace
        for message in trace.messages:
            assert _find_unordered(message.payload) is None, message.payload

    def test_collection_payloads_are_sorted_tuples(self):
        trace = run_help_path().trace
        collections = [
            m.payload[1]
            for m in trace.messages
            if isinstance(m.payload, tuple) and m.payload[0] in ("HELPED", "C")
        ]
        assert collections
        for collection in collections:
            assert isinstance(collection, tuple)
            assert list(collection) == sorted(collection)

    def test_fingerprint_is_byte_pinned(self):
        assert run_help_path().trace.fingerprint() == GOLDEN_HELP_PATH

    def test_fingerprint_stable_across_runs(self):
        assert (
            run_help_path().trace.fingerprint()
            == run_help_path().trace.fingerprint()
        )
