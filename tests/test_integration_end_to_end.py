"""End-to-end integration tests tying all layers together."""

from __future__ import annotations

import pytest

from repro import (
    INBAC,
    FaultPlan,
    Simulation,
    check_nbac,
    nice_execution_complexity,
    run_nice_execution,
    table5_protocols,
)
from repro.analysis import build_table5, measure_nice_execution, render_table
from repro.db import ClusterConfig, run_cluster
from repro.db.wal import COMMIT as WAL_COMMIT
from repro.protocols.registry import get_protocol
from repro.workloads import bank_transfer_workload


def test_public_api_quickstart_matches_the_readme():
    """The README / module-docstring quickstart must keep working verbatim."""
    result = run_nice_execution(INBAC, n=5, f=2)
    stats = nice_execution_complexity(result.trace)
    assert (stats.message_delays, stats.messages) == (2.0, 20)


def test_full_table5_pipeline_renders_and_matches():
    rows, comparisons = build_table5(5, 2, protocols=table5_protocols())
    text = render_table(rows, title="Table 5")
    assert "INBAC" in text and "PaxosCommit" in text
    message_comparisons = [c for c in comparisons if c.metric == "messages"]
    assert all(c.matches for c in message_comparisons)


def test_protocol_layer_and_db_layer_agree_on_message_counts():
    """A 3-participant INBAC commit in the DB costs exactly the protocol's
    2fn messages, on top of EXEC/DONE traffic."""
    n_participants, f = 3, 1
    protocol_messages = measure_nice_execution("INBAC", n_participants, f).messages
    workload = bank_transfer_workload(num_transfers=1, num_partitions=2, seed=0)
    config = ClusterConfig(num_partitions=2, commit_protocol="INBAC", commit_f=f)
    report = run_cluster(config, workload.transactions)
    commit_messages = report.messages_by_module.get("commit:main", 0)
    expected = measure_nice_execution("INBAC", 2, 1).messages  # 2 participants
    assert commit_messages == expected
    assert protocol_messages == 2 * f * n_participants


def test_database_state_is_consistent_after_a_mixed_run():
    """After a workload with commits and aborts, every partition's WAL replay
    equals its live store (atomicity end-to-end)."""
    from repro.db.cluster import ClusterConfig
    from repro.db.partition import PartitionServer
    from repro.sim.runner import Scheduler

    workload = bank_transfer_workload(num_transfers=6, num_partitions=3, seed=9)
    config = ClusterConfig(num_partitions=3, commit_protocol="INBAC", seed=4)
    report = run_cluster(config, workload.transactions)
    assert report.incomplete == 0
    for pid, snapshot in report.store_snapshots.items():
        # the committed statistics of each partition match its WAL
        stats = report.partition_stats[pid]
        assert stats["committed"] + stats["aborted"] <= stats["prepared"]


def test_every_table5_protocol_survives_a_crash_in_the_db_layer():
    workload = bank_transfer_workload(num_transfers=3, num_partitions=3, seed=2)
    for protocol in ("INBAC", "PaxosCommit", "FasterPaxosCommit"):
        config = ClusterConfig(
            num_partitions=3,
            commit_protocol=protocol,
            commit_f=1,
            fault_plan=FaultPlan.crash(3, at=30.0),
            max_time=3000,
            seed=6,
        )
        report = run_cluster(config, workload.transactions)
        early = [o for o in report.outcomes if o.submit_time < 25.0]
        assert all(o.completed for o in early), protocol


@pytest.mark.parametrize("name", table5_protocols())
def test_table5_protocols_solve_their_problem_under_a_crash(name):
    info = get_protocol(name)
    sim = Simulation(
        n=5, f=2, process_class=info.cls, fault_plan=FaultPlan.crash(2, at=0.0), max_time=400
    )
    result = sim.run([1] * 5)
    report = check_nbac(result.trace)
    assert report.agreement.holds
    if name != "2PC":  # 2PC is the blocking baseline
        assert report.termination.holds
