"""The repro.lint rule set against its fixture corpus and the live tree.

Every rule gets a fixture-backed positive test (the known-bad snippet fires
at the expected file:line) and rides the shared negative tests (the
known-good snippets produce zero findings).  The battery also pins the
engine-level behaviours the determinism contract depends on: the allowlist
pragma policy, fixture-directory exclusion from normal walks, the JSON
report shape, CLI exit codes, and the shared spawn-safety rule table that
keeps the static rule and :func:`repro.exp.engine.ensure_spawn_safe` from
drifting apart.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.lint import default_rules, lint_file, lint_paths
from repro.lint.cli import main as lint_main
from repro.lint.rules.spawn_safety import SPAWN_AXIS_FIELDS

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def findings_of(name: str, kind: str = "src"):
    report = lint_file(FIXTURES / name, kind=kind, root=REPO_ROOT)
    return report


def locations(report, rule: str):
    return [(f.rule, f.line) for f in report.findings if f.rule == rule]


# --------------------------------------------------------------------------- #
# positive fixtures: each rule fires at the expected line
# --------------------------------------------------------------------------- #
class TestBadFixtures:
    def test_det001_loop_and_list_escape(self):
        report = findings_of("bad_det001_set_iteration.py")
        assert locations(report, "DET001") == [("DET001", 6), ("DET001", 13)]

    def test_det002_wall_clock_and_global_random(self):
        report = findings_of("bad_det002_wall_clock.py")
        assert locations(report, "DET002") == [
            ("DET002", 7),
            ("DET002", 8),
            ("DET002", 9),
        ]
        messages = " ".join(f.message for f in report.findings)
        assert "random.random()" in messages
        assert "time.time()" in messages
        assert "datetime.now()" in messages

    def test_det002_numpy_global_random(self):
        report = findings_of("bad_det002_numpy_random.py")
        # the import of a module-level sampler, both global-state call
        # spellings, and np.random.seed itself; seeded RandomState /
        # default_rng constructions never fire
        assert locations(report, "DET002") == [
            ("DET002", 5),
            ("DET002", 7),
            ("DET002", 8),
            ("DET002", 9),
        ]
        messages = " ".join(f.message for f in report.findings)
        assert "np.random.seed()" in messages
        assert "numpy.random.rand()" in messages
        assert "RandomState" in messages

    def test_det003_id_and_hash_keyed_sorts(self):
        report = findings_of("bad_det003_hash_sort.py")
        assert locations(report, "DET003") == [("DET003", 5), ("DET003", 9)]

    def test_fp001_json_dumps_without_sort_keys(self):
        report = findings_of("bad_fp001_digest.py")
        assert locations(report, "FP001") == [("FP001", 8)]
        assert "sort_keys=True" in report.findings[0].message

    def test_fp002_set_in_payload_direct_and_via_local(self):
        report = findings_of("bad_fp002_payload.py")
        assert locations(report, "FP002") == [("FP002", 6), ("FP002", 9)]

    def test_fp003_unsorted_fold_in_row(self):
        report = findings_of("bad_fp003_fold.py")
        assert locations(report, "FP003") == [("FP003", 10)]

    def test_sp001_lambda_and_local_closure_in_spec(self):
        report = findings_of("bad_sp001_spec.py", kind="benchmarks")
        assert locations(report, "SP001") == [("SP001", 13), ("SP001", 14)]

    def test_lnt000_pragma_without_justification(self):
        report = findings_of("bad_lnt000_pragma.py")
        rules = {f.rule for f in report.findings}
        # the malformed pragma is itself a finding AND does not suppress
        assert rules == {"LNT000", "DET001"}


# --------------------------------------------------------------------------- #
# negative fixtures: sanctioned idioms never fire
# --------------------------------------------------------------------------- #
class TestGoodFixtures:
    def test_clean_idioms_have_zero_findings(self):
        report = findings_of("good_clean.py")
        assert report.findings == []
        assert report.suppressed == []

    def test_justified_pragma_suppresses(self):
        report = findings_of("good_pragma.py")
        assert report.findings == []
        assert [s.rule for s in report.suppressed] == ["DET001"]
        assert report.suppressed[0].justification.startswith("snapshot order")
        assert report.ok


# --------------------------------------------------------------------------- #
# engine behaviours
# --------------------------------------------------------------------------- #
class TestEngine:
    def test_fixture_directory_skipped_by_normal_walks(self):
        report = lint_paths([Path(__file__).resolve().parent], root=REPO_ROOT)
        assert not any("lint_fixtures" in f.path for f in report.findings)

    def test_full_tree_is_clean(self):
        report = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks", REPO_ROOT / "tests"],
            root=REPO_ROOT,
        )
        assert report.ok, report.render_text()

    def test_json_report_shape(self):
        report = findings_of("bad_fp001_digest.py")
        data = json.loads(report.render_json())
        assert data["ok"] is False
        assert data["counts"] == {"FP001": 1}
        assert data["findings"][0]["rule"] == "FP001"
        assert data["findings"][0]["line"] == 8
        assert data["files_checked"] == 1

    def test_rule_ids_are_unique_and_scoped(self):
        rules = default_rules()
        ids = [r.rule_id for r in rules]
        assert len(ids) == len(set(ids))
        assert set(ids) == {
            "DET001", "DET002", "DET003", "FP001", "FP002", "FP003",
            "OBS001", "SP001",
        }
        for rule in rules:
            assert rule.kinds and all(
                k in ("src", "benchmarks", "tests") for k in rule.kinds
            )


# --------------------------------------------------------------------------- #
# per-package rule scoping (SCOPE_EXEMPTIONS)
# --------------------------------------------------------------------------- #
class TestScopeExemptions:
    def test_policy_table_names_known_rules_and_posix_prefixes(self):
        from repro.lint.rules import SCOPE_EXEMPTIONS

        known = {r.rule_id for r in default_rules()}
        for rule_id, prefixes in SCOPE_EXEMPTIONS.items():
            assert rule_id in known
            assert prefixes, rule_id
            for prefix in prefixes:
                assert "\\" not in prefix and prefix.endswith("/"), prefix

    def test_det002_scoped_out_of_the_runtime_package(self):
        # the exemption must be load-bearing: the runtime really reads the
        # wall clock, and DET002 really stays silent about it
        runtime_py = REPO_ROOT / "src" / "repro" / "runtime" / "runtime.py"
        assert "time.monotonic()" in runtime_py.read_text(encoding="utf-8")
        report = lint_file(runtime_py, root=REPO_ROOT)
        assert locations(report, "DET002") == []

    def test_det002_still_fires_outside_the_exempt_prefix(self):
        report = findings_of("bad_det002_wall_clock.py")
        assert locations(report, "DET002")

    def test_other_rules_still_cover_the_runtime_package(self):
        from repro.lint.ast_checks import load_context
        from repro.lint.rules import (
            UnorderedIterationRule,
            WallClockAndGlobalRandomRule,
        )

        ctx = load_context(
            REPO_ROOT / "src" / "repro" / "runtime" / "runtime.py",
            root=REPO_ROOT,
        )
        assert ctx.relpath == "src/repro/runtime/runtime.py"
        scoped = {r.rule_id: r for r in default_rules()}
        assert not scoped["DET002"].applies_to(ctx)
        assert scoped["DET001"].applies_to(ctx)
        # fresh instances carry no exemption: the policy lives in the
        # registry, not hard-coded into the rule classes
        assert WallClockAndGlobalRandomRule().applies_to(ctx)
        assert UnorderedIterationRule().applies_to(ctx)

    def test_exempt_prefix_does_not_leak_to_sibling_paths(self):
        from repro.lint.ast_checks import load_context

        ctx = load_context(
            REPO_ROOT / "src" / "repro" / "sim" / "runner.py", root=REPO_ROOT
        )
        scoped = {r.rule_id: r for r in default_rules()}
        assert scoped["DET002"].applies_to(ctx)

    def test_det002_scoped_out_of_the_obs_package(self):
        # load-bearing like the runtime exemption: the obs reporters really
        # read the wall clock, and DET002 really stays silent about it
        progress_py = REPO_ROOT / "src" / "repro" / "obs" / "progress.py"
        assert "time.monotonic()" in progress_py.read_text(encoding="utf-8")
        report = lint_file(progress_py, root=REPO_ROOT)
        assert locations(report, "DET002") == []


# --------------------------------------------------------------------------- #
# OBS001: observability stays out of the deterministic layers
# --------------------------------------------------------------------------- #
class TestObsIsolation:
    def _lint_under(self, tmp_path, relpath: str, source: str):
        """Lint ``source`` as if it lived at ``relpath`` in a repo tree."""
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        return lint_file(path, root=tmp_path)

    def test_obs_import_in_sim_fires(self, tmp_path):
        report = self._lint_under(
            tmp_path,
            "src/repro/sim/bad.py",
            "import repro.obs\n",
        )
        assert locations(report, "OBS001") == [("OBS001", 1)]

    def test_obs_from_import_in_protocols_fires(self, tmp_path):
        report = self._lint_under(
            tmp_path,
            "src/repro/protocols/bad.py",
            "from repro.obs.metrics import MetricsRegistry\n",
        )
        assert locations(report, "OBS001") == [("OBS001", 1)]
        assert "duck-typed" in report.findings[0].message

    def test_obs_subpackage_alias_in_db_fires(self, tmp_path):
        report = self._lint_under(
            tmp_path,
            "src/repro/db/bad.py",
            "from repro import obs\n",
        )
        assert locations(report, "OBS001") == [("OBS001", 1)]

    def test_results_and_spec_modules_are_protected(self, tmp_path):
        for relpath in ("src/repro/exp/results.py", "src/repro/exp/spec.py"):
            report = self._lint_under(
                tmp_path, relpath, "from repro.obs import MetricsRegistry\n"
            )
            assert locations(report, "OBS001") == [("OBS001", 1)], relpath

    def test_sanctioned_layers_may_import_obs(self, tmp_path):
        # the engine's lazy hooks, the analysis layer, and obs itself
        for relpath in (
            "src/repro/exp/engine.py",
            "src/repro/analysis/report.py",
            "src/repro/obs/progress.py",
        ):
            report = self._lint_under(
                tmp_path, relpath, "from repro.obs.progress import resolve_progress\n"
            )
            assert locations(report, "OBS001") == [], relpath

    def test_non_obs_imports_never_fire(self, tmp_path):
        report = self._lint_under(
            tmp_path,
            "src/repro/sim/fine.py",
            "import repro.observability_notes\nfrom repro import errors\n",
        )
        assert locations(report, "OBS001") == []

    def test_live_deterministic_tree_is_obs_free(self):
        # both directions pinned: the rule exists AND the real tree obeys it
        from repro.lint.rules.obs_isolation import PROTECTED_PREFIXES

        report = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert locations(report, "OBS001") == []
        assert any(p.startswith("src/repro/db") for p in PROTECTED_PREFIXES)


class TestCli:
    def test_cli_exit_zero_on_clean_tree(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src", "benchmarks", "tests"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_cli_exit_one_on_findings(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        # DET003 also covers tests/, so the fixture fires even at kind=tests
        path = FIXTURES / "bad_det003_hash_sort.py"
        assert lint_main([str(path)]) == 1
        assert "DET003" in capsys.readouterr().out

    def test_cli_json_format(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["--format=json", "src"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["ok"] is True

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "DET001", "DET002", "DET003", "FP001", "FP002", "FP003",
            "OBS001", "SP001",
        ):
            assert rule_id in out


# --------------------------------------------------------------------------- #
# shared rule table: static and runtime spawn-safety check the same fields
# --------------------------------------------------------------------------- #
class TestSharedRuleTable:
    def test_axis_fields_match_trialspec_attributes(self):
        from repro.exp.spec import TrialSpec

        attrs = {f.name for f in dataclasses.fields(TrialSpec)}
        for grid_field, attr in SPAWN_AXIS_FIELDS:
            assert attr in attrs, (grid_field, attr)

    def test_runtime_check_iterates_the_shared_table(self):
        import inspect

        from repro.exp.engine import ensure_spawn_safe

        assert "SPAWN_AXIS_FIELDS" in inspect.getsource(ensure_spawn_safe)
