"""The runtime determinism sanitizer (``repro.lint.sanitizer``).

The wrappers must (a) stay invisible on the deterministic code paths the
repo actually runs — clean traces and accumulators produce the same bytes
with the sanitizer armed — and (b) turn latent order-dependence into a loud
:class:`~repro.errors.DeterminismError`: payloads carrying bare sets,
fingerprints that change under dict-insertion-order perturbation, and
aggregate rows that depend on digest fold order.
"""

from __future__ import annotations

import pytest

from repro.errors import DeterminismError
from repro.exp.results import CellAccumulator
from repro.lint import sanitizer
from repro.sim import FaultPlan, Simulation
from repro.sim.trace import CounterTrace, Trace


@pytest.fixture(autouse=True)
def _pristine_wrappers():
    """Every test starts and ends with the wrappers uninstalled."""
    sanitizer.uninstall()
    yield
    sanitizer.uninstall()


def _accumulator(last_counts):
    acc = CellAccumulator(
        key=("2PC", 3, 1, "uniform", "none", "all-yes", "-"),
        first_index=0,
        execution_class="failure-free",
    )
    acc.count = sum(last_counts.values())
    acc.n_last = acc.count
    acc.last_counts = dict(last_counts)
    return acc


class TestInstall:
    def test_install_is_idempotent_and_uninstall_restores(self):
        original = Trace.fingerprint
        sanitizer.install()
        wrapped = Trace.fingerprint
        assert wrapped is not original
        sanitizer.install()  # second install must not re-wrap
        assert Trace.fingerprint is wrapped
        assert sanitizer.is_installed()
        sanitizer.uninstall()
        assert Trace.fingerprint is original
        assert not sanitizer.is_installed()

    def test_maybe_install_follows_env_flag(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_FLAG, raising=False)
        assert sanitizer.maybe_install() is False
        assert not sanitizer.is_installed()
        monkeypatch.setenv(sanitizer.ENV_FLAG, "1")
        assert sanitizer.maybe_install() is True
        assert sanitizer.is_installed()


class TestPayloadRejection:
    def test_full_trace_rejects_frozenset_payload(self):
        sanitizer.install()
        trace = Trace(n=3, f=1, protocol="X")
        with pytest.raises(DeterminismError, match="unordered frozenset"):
            trace.record_send(1, 1, 2, ("ACK", frozenset({1, 2})), 0.0, 1.0, True)

    def test_counter_trace_rejects_nested_set(self):
        sanitizer.install()
        trace = CounterTrace(n=3, f=1, protocol="X")
        with pytest.raises(DeterminismError, match="unordered set"):
            trace.record_send(1, 1, 2, ("C", ({1, 2},)), 0.0, 1.0, True)

    def test_sorted_tuple_payload_passes(self):
        sanitizer.install()
        trace = Trace(n=3, f=1, protocol="X")
        before = sanitizer.observations["record_send"]
        trace.record_send(1, 1, 2, ("ACK", (1, 2)), 0.0, 1.0, True)
        assert sanitizer.observations["record_send"] == before + 1
        assert len(trace.messages) == 1


class TestFingerprintPerturbation:
    def test_order_dependent_canonical_is_detected(self):
        class BadTrace(Trace):
            def _canonical(self):
                # depends on metadata insertion order — the defect class
                # the perturbation check exists to catch
                return {"first": next(iter(self.metadata), None)}

        sanitizer.install()
        trace = BadTrace(n=3, f=1, protocol="X")
        trace.metadata["a"] = 1
        trace.metadata["b"] = 2
        with pytest.raises(DeterminismError, match="insertion order"):
            trace.fingerprint()

    def test_clean_execution_fingerprints_unchanged(self):
        from repro.protocols import TwoPhaseCommit

        def run():
            sim = Simulation(n=3, f=1, process_class=TwoPhaseCommit, seed=7)
            return sim.run(votes=[1, 1, 1]).trace.fingerprint()

        bare = run()
        sanitizer.install()
        sanitized = run()
        assert sanitized == bare
        assert sanitizer.observations["fingerprint"] > 0


class TestRowPerturbation:
    def test_order_dependent_digest_reduction_is_detected(self, monkeypatch):
        # simulate the pre-PR-3 defect: a float reduction that walks the
        # digest in insertion order instead of sorted(counts)
        monkeypatch.setattr(
            "repro.exp.results._digest_sum",
            lambda counts: next(iter(counts), 0.0),
        )
        sanitizer.install()
        acc = _accumulator({1.0: 1, 2.0: 1})
        with pytest.raises(DeterminismError, match="mean_delays"):
            acc.row()

    def test_clean_accumulator_row_unchanged(self):
        bare = _accumulator({1.0: 1, 2.0: 1}).row()
        sanitizer.install()
        sanitized = _accumulator({1.0: 1, 2.0: 1}).row()
        assert sanitized == bare
        assert sanitizer.observations["row"] > 0


class TestSanitizedSweep:
    def test_reference_sweep_runs_clean_under_wrappers(self):
        out = sanitizer.run_sanitized_sweep()
        assert set(out["fingerprints"]) == {
            "serial:aggregate",
            "serial:trials",
            "serial:replay",
        }
        assert out["observations"]["record_send"] > 0
        # run_sanitized_sweep restores the pristine state it found
        assert not sanitizer.is_installed()

    def test_help_path_execution_is_sanitizer_clean(self):
        """INBAC's ASK_HELP/HELPED path sends collection payloads; with the
        sanitizer armed the run must complete without a DeterminismError."""
        from repro.protocols import INBAC

        sanitizer.install()
        sim = Simulation(
            n=5,
            f=2,
            process_class=INBAC,
            fault_plan=FaultPlan.crashes_at({1: 0.0, 2: 0.0}),
            seed=3,
        )
        result = sim.run(votes=[1] * 5)
        assert result.trace.decisions
