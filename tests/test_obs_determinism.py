"""Determinism under observation: watching a sweep must not change its bytes.

The observability contract has two halves.  OBS001 (static) keeps
``repro.obs`` imports out of the deterministic layers; this battery
(dynamic) proves the runtime half — the same grid produces byte-identical
``SweepAggregate`` fingerprints with observation on and off, across worker
counts, fold paths and pool start methods, under the runtime sanitizer, and
under ``REPRO_PROFILE=1``.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest

from repro.exp import GridSpec, run_sweep
from repro.obs import (
    CollectingProgress,
    JsonlProgressReporter,
    MetricsProgressReporter,
    ProgressEvent,
    SinkSpec,
)

SRC_DIR = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")


def grid() -> GridSpec:
    """Registry-named (spawn-safe by construction), two protocols, 12 trials."""
    return GridSpec(
        protocols=["2PC", "INBAC"],
        systems=[(4, 1)],
        delays=["uniform"],
        seeds=list(range(6)),
    )


def fingerprint(progress=None, **kwargs) -> str:
    agg = run_sweep(grid(), mode="aggregate", progress=progress, **kwargs)
    assert agg.error_count == 0, agg.sample_errors
    return agg.aggregate_fingerprint()


def parallel_or_skip(agg):
    if agg.meta["mode"] != "parallel":
        pytest.skip("fork start method unavailable; parallel path not exercised")
    return agg


class TestFingerprintEquality:
    @pytest.mark.parametrize("trace_level", ["counters", "full"])
    def test_serial_obs_on_equals_off(self, trace_level, tmp_path):
        baseline = fingerprint(workers=1, trace_level=trace_level)
        observed = fingerprint(
            workers=1, trace_level=trace_level, progress=CollectingProgress()
        )
        jsonl = fingerprint(
            workers=1, trace_level=trace_level,
            progress=JsonlProgressReporter(str(tmp_path / "p.jsonl")),
        )
        assert baseline == observed == jsonl

    @pytest.mark.parametrize("fold", ["trial", "chunk"])
    def test_fork_pool_obs_on_equals_off(self, fold):
        baseline_agg = parallel_or_skip(
            run_sweep(grid(), workers=2, mode="aggregate", fold=fold)
        )
        progress = CollectingProgress()
        observed_agg = run_sweep(
            grid(), workers=2, mode="aggregate", fold=fold, progress=progress
        )
        assert (
            baseline_agg.aggregate_fingerprint()
            == observed_agg.aggregate_fingerprint()
        )
        assert observed_agg.meta == baseline_agg.meta
        assert progress.events[-1].phase == "summary"

    def test_spawn_pool_obs_on_equals_off(self):
        baseline = run_sweep(
            grid(), workers=2, mode="aggregate", fold="chunk", start_method="spawn"
        )
        assert baseline.meta["start_method"] == "spawn"
        progress = CollectingProgress()
        observed = run_sweep(
            grid(), workers=2, mode="aggregate", fold="chunk",
            start_method="spawn", progress=progress,
        )
        assert baseline.aggregate_fingerprint() == observed.aggregate_fingerprint()
        # the callback runs parent-side only: a non-picklable closure is fine
        # under spawn, and the stream still covers the whole run
        assert progress.events[0].phase == "start"
        assert progress.events[-1].trials_done == 12

    def test_full_mode_results_unchanged_by_progress(self):
        import dataclasses

        plain = run_sweep(grid(), workers=1)
        observed = run_sweep(grid(), workers=1, progress=CollectingProgress())
        assert plain.fingerprint() == observed.fingerprint()
        assert [dataclasses.asdict(t) for t in plain.trials] == [
            dataclasses.asdict(t) for t in observed.trials
        ]


_SUBPROCESS_SWEEP = """
import sys
from repro.exp import GridSpec, run_sweep
from repro.obs import MetricsProgressReporter

grid = GridSpec(
    protocols=["2PC", "INBAC"], systems=[(4, 1)], delays=["uniform"],
    seeds=list(range(6)),
)
agg = run_sweep(
    grid, workers=1, mode="aggregate", fold="chunk",
    progress=MetricsProgressReporter(),
)
assert agg.error_count == 0, agg.sample_errors
sys.stdout.write(agg.aggregate_fingerprint())
"""


def _subprocess_fingerprint(extra_env):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR
    env.update(extra_env)
    result = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SWEEP],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


class TestHardenedEnvironments:
    def test_observed_sweep_under_the_runtime_sanitizer(self):
        """REPRO_SANITIZE=1 + obs on reproduces the plain fingerprint."""
        baseline = fingerprint(workers=1, fold="chunk")
        sanitized = _subprocess_fingerprint({"REPRO_SANITIZE": "1"})
        assert sanitized == baseline

    def test_profiled_sweep_keeps_the_fingerprint(self, tmp_path):
        """REPRO_PROFILE=1 dumps .prof files but never changes aggregates."""
        baseline = fingerprint(workers=1, fold="chunk")
        profile_dir = str(tmp_path / "prof")
        profiled = _subprocess_fingerprint(
            {"REPRO_PROFILE": "1", "REPRO_PROFILE_DIR": profile_dir}
        )
        assert profiled == baseline
        dumps = [f for f in os.listdir(profile_dir) if f.endswith(".prof")]
        assert dumps, "REPRO_PROFILE=1 produced no .prof dumps"


class TestSpawnSafeConfiguration:
    def test_progress_event_and_sink_spec_cross_the_boundary(self, tmp_path):
        event = ProgressEvent(
            phase="chunk", trials_total=8, trials_done=2, chunks_total=8,
            chunks_done=2, queue_depth=6, workers=2, mode="parallel",
            fold="chunk",
        )
        assert pickle.loads(pickle.dumps(event)) == event
        spec = SinkSpec(kind="jsonl", path=str(tmp_path / "e.jsonl"))
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_open_reporters_stay_parent_side(self, tmp_path):
        """A JsonlProgressReporter holds an open handle — unpicklable — yet a
        spawn-pool sweep accepts it, because progress never ships to workers."""
        reporter = JsonlProgressReporter(str(tmp_path / "p.jsonl"))
        agg = run_sweep(
            grid(), workers=2, mode="aggregate", fold="chunk",
            start_method="spawn", progress=reporter,
        )
        assert agg.meta["start_method"] == "spawn"
        assert agg.error_count == 0
