"""Tests for :mod:`repro.obs.events` — the event bus and its pluggable sinks."""

from __future__ import annotations

import io
import json
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    Event,
    EventBus,
    JsonlSink,
    MemorySink,
    SinkSpec,
    StderrSink,
    read_jsonl,
)
from repro.obs.events import SINK_KINDS


class TestEvent:
    def test_to_jsonable_sorts_fields_after_header(self):
        event = Event(name="x", wall_time=1.5, fields={"b": 2, "a": 1})
        record = event.to_jsonable()
        assert list(record) == ["event", "wall_time", "a", "b"]
        assert record["event"] == "x"


class TestSinks:
    def test_memory_sink_collects_in_order(self):
        sink = MemorySink()
        bus = EventBus([sink])
        bus.emit("first", k=1)
        bus.emit("second")
        assert sink.names() == ["first", "second"]
        assert sink.events[0].fields == {"k": 1}
        assert bus.emitted == 2

    def test_stderr_sink_writes_compact_lines(self):
        stream = io.StringIO()
        sink = StderrSink(stream=stream)
        EventBus([sink]).emit("cluster.crash", pid=2, at_units=3.5)
        line = stream.getvalue()
        assert line.startswith("[obs] cluster.crash ")
        assert "at_units=3.5" in line and "pid=2" in line

    def test_jsonl_sink_round_trips(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        sink = JsonlSink(path)
        bus = EventBus([sink])
        bus.emit("a", n=1)
        bus.emit("b", n=2, tag="x")
        bus.close()
        records = read_jsonl(path)
        assert [r["event"] for r in records] == ["a", "b"]
        assert records[1]["tag"] == "x"
        assert all("wall_time" in r for r in records)
        # each line is sorted-keys JSON (stable bytes for identical events)
        with open(path) as handle:
            first = handle.readline()
        assert first == json.dumps(json.loads(first), sort_keys=True) + "\n"

    def test_jsonl_sink_appends(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        for n in range(2):
            sink = JsonlSink(path)
            sink.emit(Event(name=f"run{n}", wall_time=0.0))
            sink.close()
        assert [r["event"] for r in read_jsonl(path)] == ["run0", "run1"]

    def test_bus_fans_out_to_every_sink(self):
        a, b = MemorySink(), MemorySink()
        bus = EventBus([a])
        bus.add_sink(b)
        bus.emit("x")
        assert a.names() == b.names() == ["x"]


class TestSinkSpec:
    def test_kinds_cover_the_catalogue(self):
        assert SINK_KINDS == ("memory", "stderr", "jsonl")

    def test_build_each_kind(self, tmp_path):
        assert isinstance(SinkSpec(kind="memory").build(), MemorySink)
        assert isinstance(SinkSpec(kind="stderr").build(), StderrSink)
        jsonl = SinkSpec(kind="jsonl", path=str(tmp_path / "e.jsonl")).build()
        try:
            assert isinstance(jsonl, JsonlSink)
        finally:
            jsonl.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError) as err:
            SinkSpec(kind="syslog")
        assert "syslog" in str(err.value)

    def test_jsonl_without_path_rejected(self):
        with pytest.raises(ConfigurationError):
            SinkSpec(kind="jsonl")

    def test_spec_is_picklable_and_builds_after_the_trip(self, tmp_path):
        """The spawn-safety contract: config crosses the boundary, not handles."""
        spec = SinkSpec(kind="jsonl", path=str(tmp_path / "e.jsonl"))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        sink = clone.build()
        sink.emit(Event(name="after-pickle", wall_time=0.0))
        sink.close()
        assert read_jsonl(clone.path)[0]["event"] == "after-pickle"
