"""Tests for :mod:`repro.obs.metrics` — mergeable counters/gauges/histograms.

The contract mirrors :meth:`repro.exp.results.CellAccumulator.merge`: a
snapshot merge must be exact, order-independent, and produce byte-identical
JSON regardless of how the observations were split across registries.
"""

from __future__ import annotations

import json
import pickle

from repro.obs import MetricsRegistry, MetricsSnapshot
from repro.obs.metrics import Histogram


class TestInstruments:
    def test_counter_inc_and_default(self):
        registry = MetricsRegistry()
        assert registry.counter_value("absent") == 0
        registry.inc("sends")
        registry.inc("sends", 4)
        assert registry.counter_value("sends") == 5

    def test_gauge_last_write_wins_locally(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 7)
        registry.set_gauge("depth", 3)
        assert registry.snapshot().gauges["depth"] == 3.0

    def test_unset_gauge_is_absent_from_snapshot(self):
        registry = MetricsRegistry()
        registry.gauge("never_set")
        assert "never_set" not in registry.snapshot().gauges

    def test_histogram_digest_is_exact(self):
        histogram = Histogram()
        for value in (3.0, 1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.counts == {1.0: 1, 2.0: 1, 3.0: 2}
        assert histogram.total == 4
        assert histogram.sum() == 9.0
        assert histogram.mean() == 2.25
        assert histogram.percentile(50) == 2.0
        assert histogram.percentile(99) == 3.0

    def test_empty_histogram_summaries_are_none(self):
        histogram = Histogram()
        assert histogram.mean() is None
        assert histogram.percentile(50) is None

    def test_names_lists_every_instrument_sorted(self):
        registry = MetricsRegistry()
        registry.observe("latency", 1.0)
        registry.inc("sends")
        registry.set_gauge("depth", 2)
        assert registry.names() == [
            ("counter", "sends"),
            ("gauge", "depth"),
            ("histogram", "latency"),
        ]


def _observe_all(registry: MetricsRegistry, observations) -> None:
    for kind, name, value in observations:
        if kind == "counter":
            registry.inc(name, value)
        elif kind == "gauge":
            registry.set_gauge(name, value)
        else:
            registry.observe(name, value)


OBSERVATIONS = [
    ("counter", "sends", 3),
    ("histogram", "delay", 1.5),
    ("gauge", "depth", 4),
    ("histogram", "delay", 0.5),
    ("counter", "drops", 1),
    ("histogram", "delay", 1.5),
    ("gauge", "depth", 2),
    ("counter", "sends", 2),
]


class TestSnapshotMerge:
    def test_split_merge_equals_single_registry(self):
        """Any split of the observation stream folds to the same bytes."""
        whole = MetricsRegistry()
        _observe_all(whole, OBSERVATIONS)
        expected = json.dumps(whole.snapshot().to_jsonable(), sort_keys=True)

        for split in range(len(OBSERVATIONS) + 1):
            left, right = MetricsRegistry(), MetricsRegistry()
            _observe_all(left, OBSERVATIONS[:split])
            _observe_all(right, OBSERVATIONS[split:])
            merged = left.snapshot()
            merged.merge(right.snapshot())
            got = json.dumps(merged.to_jsonable(), sort_keys=True)
            # gauges merge by max (no timestamps), so the merged gauge may
            # exceed the single-registry last-write — compare modulo that
            merged_dict = json.loads(got)
            expected_dict = json.loads(expected)
            assert merged_dict["counters"] == expected_dict["counters"]
            assert merged_dict["histograms"] == expected_dict["histograms"]
            assert merged_dict["gauges"]["depth"] in (2.0, 4.0)

    def test_merge_is_commutative(self):
        a1, b1 = MetricsRegistry(), MetricsRegistry()
        _observe_all(a1, OBSERVATIONS[:4])
        _observe_all(b1, OBSERVATIONS[4:])
        ab = a1.snapshot()
        ab.merge(b1.snapshot())
        ba = b1.snapshot()
        ba.merge(a1.snapshot())
        assert json.dumps(ab.to_jsonable(), sort_keys=True) == json.dumps(
            ba.to_jsonable(), sort_keys=True
        )

    def test_merge_is_associative(self):
        thirds = [OBSERVATIONS[0:3], OBSERVATIONS[3:6], OBSERVATIONS[6:]]
        snapshots = []
        for part in thirds:
            registry = MetricsRegistry()
            _observe_all(registry, part)
            snapshots.append(registry.snapshot())
        left = MetricsSnapshot()
        left.merge(snapshots[0])
        left.merge(snapshots[1])
        left.merge(snapshots[2])
        bc = MetricsSnapshot()
        bc.merge(snapshots[1])
        bc.merge(snapshots[2])
        right = MetricsSnapshot()
        right.merge(snapshots[0])
        right.merge(bc)
        assert json.dumps(left.to_jsonable(), sort_keys=True) == json.dumps(
            right.to_jsonable(), sort_keys=True
        )

    def test_histogram_summary_over_merged_digest(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for value in (1.0, 2.0):
            a.observe("delay", value)
        for value in (2.0, 10.0):
            b.observe("delay", value)
        merged = a.snapshot()
        merged.merge(b.snapshot())
        summary = merged.histogram_summary("delay")
        assert summary["count"] == 4.0
        assert summary["mean"] == 3.75
        assert summary["p50"] == 2.0
        assert summary["p99"] == 10.0

    def test_missing_histogram_summary_is_empty(self):
        summary = MetricsSnapshot().histogram_summary("absent")
        assert summary == {"count": 0.0, "mean": None, "p50": None, "p99": None}

    def test_snapshot_is_picklable_and_json_safe(self):
        registry = MetricsRegistry()
        _observe_all(registry, OBSERVATIONS)
        snapshot = registry.snapshot()
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot
        # to_jsonable must survive a strict JSON round trip
        round_tripped = json.loads(json.dumps(snapshot.to_jsonable(), sort_keys=True))
        assert round_tripped["counters"] == {"drops": 1, "sends": 5}
