"""Tests for :mod:`repro.obs.profile` — the opt-in cProfile sweep wrapper."""

from __future__ import annotations

import glob
import os

import pytest

from repro.obs import profile


def _burn():
    return sum(i * i for i in range(2000))


class TestEnvironmentGate:
    @pytest.mark.parametrize("value", ["1", "yes", "true", "on"])
    def test_truthy_values_enable(self, value):
        assert profile.is_enabled({profile.ENV_FLAG: value}) is True

    @pytest.mark.parametrize("value", ["", "0", "false", "False"])
    def test_falsey_values_disable(self, value):
        assert profile.is_enabled({profile.ENV_FLAG: value}) is False

    def test_unset_disables(self):
        assert profile.is_enabled({}) is False

    def test_profile_dir_override(self):
        assert profile.profile_dir({}) == profile.DEFAULT_DIR
        assert profile.profile_dir({profile.ENV_DIR: "/tmp/x"}) == "/tmp/x"


class TestProfiledContext:
    def test_dump_lands_in_the_directory(self, tmp_path):
        directory = str(tmp_path / "prof")
        with profile.profiled("chunk0001", directory=directory):
            _burn()
        (path,) = glob.glob(os.path.join(directory, "*.prof"))
        name = os.path.basename(path)
        assert name.startswith("chunk0001-")
        assert name.endswith(".prof")
        assert str(os.getpid()) in name

    def test_sequence_numbers_avoid_collisions(self, tmp_path):
        directory = str(tmp_path / "prof")
        for _ in range(2):
            with profile.profiled("serial", directory=directory):
                _burn()
        assert len(glob.glob(os.path.join(directory, "*.prof"))) == 2

    def test_dump_happens_even_when_the_block_raises(self, tmp_path):
        directory = str(tmp_path / "prof")
        with pytest.raises(RuntimeError):
            with profile.profiled("boom", directory=directory):
                raise RuntimeError("work failed")
        assert glob.glob(os.path.join(directory, "*.prof"))


class TestFoldAndReport:
    def test_fold_merges_every_dump(self, tmp_path):
        directory = str(tmp_path / "prof")
        for _ in range(3):
            with profile.profiled("chunk", directory=directory):
                _burn()
        stats = profile.fold_profiles(directory)
        assert stats is not None
        report = profile.render_report(stats, sort="cumulative", limit=5)
        assert "_burn" in report
        assert "cumulative" in report

    def test_fold_of_empty_directory_is_none(self, tmp_path):
        assert profile.fold_profiles(str(tmp_path)) is None


class TestCli:
    def test_report_over_a_directory(self, tmp_path, capsys):
        directory = str(tmp_path / "prof")
        with profile.profiled("chunk", directory=directory):
            _burn()
        assert profile.main([directory, "--sort", "tottime", "--limit", "5"]) == 0
        assert "tottime" in capsys.readouterr().out

    def test_no_dumps_is_a_loud_nonzero_exit(self, tmp_path, capsys):
        assert profile.main([str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert profile.ENV_FLAG in err
