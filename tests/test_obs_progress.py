"""Tests for live sweep progress: ``run_sweep(progress=...)`` end to end.

The engine emits count-only :class:`~repro.obs.ProgressEvent` records from
the parent process; reporters add timing on their own clock.  These tests
drive every engine path (serial/pooled x per-trial/chunked folds) through a
collecting callback and check the stream's shape, then exercise each bundled
reporter and the string forms ``resolve_progress`` accepts.
"""

from __future__ import annotations

import io
import pickle

import pytest

from repro.errors import ConfigurationError
from repro.exp import GridSpec, run_sweep
from repro.obs import (
    CollectingProgress,
    JsonlProgressReporter,
    MetricsProgressReporter,
    ProgressEvent,
    TTYProgressReporter,
    read_jsonl,
    resolve_progress,
)
from repro.obs.progress import PROGRESS_PHASES


def small_grid(trials: int = 8) -> GridSpec:
    return GridSpec(protocols=["2PC"], systems=[(4, 1)], seeds=list(range(trials)))


def make_event(phase="chunk", done=4, total=8, **overrides):
    base = dict(
        phase=phase,
        trials_total=total,
        trials_done=done,
        chunks_total=total,
        chunks_done=done,
        queue_depth=total - done,
        workers=1,
        mode="serial",
        fold="trial",
    )
    base.update(overrides)
    return ProgressEvent(**base)


def assert_well_formed_stream(events, trials_total: int):
    """The shape every engine path must produce."""
    assert events, "no progress events emitted"
    assert events[0].phase == "start"
    assert events[-1].phase == "summary"
    assert all(e.phase == "chunk" for e in events[1:-1])
    assert all(e.phase in PROGRESS_PHASES for e in events)
    assert all(e.trials_total == trials_total for e in events)
    done = [e.trials_done for e in events]
    assert done == sorted(done), "trials_done must be non-decreasing"
    assert events[-1].trials_done == trials_total
    assert events[-1].chunks_done == events[-1].chunks_total
    assert all(e.queue_depth == e.chunks_total - e.chunks_done for e in events)
    assert abs(events[-1].fraction_done - 1.0) < 1e-12


class TestProgressEvent:
    def test_fraction_done(self):
        assert make_event(done=2, total=8).fraction_done == 0.25
        assert make_event(done=0, total=0).fraction_done == 1.0

    def test_picklable_and_frozen(self):
        event = make_event()
        assert pickle.loads(pickle.dumps(event)) == event
        with pytest.raises(AttributeError):
            event.trials_done = 99


class TestEngineEmission:
    def test_serial_full_mode_emits_per_trial(self):
        progress = CollectingProgress()
        result = run_sweep(small_grid(), workers=1, progress=progress)
        assert result is not None
        assert_well_formed_stream(progress.events, 8)
        assert progress.events[-1].mode == "serial"
        assert progress.events[-1].fold == "trial"
        assert len(progress.events) == 8 + 2  # start + one per trial + summary

    def test_serial_aggregate_chunk_fold(self):
        progress = CollectingProgress()
        agg = run_sweep(
            small_grid(), workers=1, mode="aggregate", fold="chunk",
            progress=progress,
        )
        assert agg.error_count == 0
        assert_well_formed_stream(progress.events, 8)
        # a serial run has no worker chunks: the engine normalises the fold
        # to per-trial, and the progress stream reports what actually ran
        assert progress.events[-1].fold == agg.meta["fold"] == "trial"

    def test_parallel_aggregate_chunk_fold(self):
        progress = CollectingProgress()
        agg = run_sweep(
            small_grid(), workers=2, mode="aggregate", fold="chunk",
            progress=progress,
        )
        if agg.meta["mode"] != "parallel":
            pytest.skip("fork start method unavailable; parallel path not exercised")
        assert_well_formed_stream(progress.events, 8)
        assert progress.events[-1].mode == "parallel"
        assert progress.events[-1].workers == 2
        assert progress.events[-1].fold == "chunk"

    def test_parallel_per_trial_fold(self):
        progress = CollectingProgress()
        agg = run_sweep(
            small_grid(), workers=2, mode="aggregate", fold="trial",
            progress=progress,
        )
        if agg.meta["mode"] != "parallel":
            pytest.skip("fork start method unavailable; parallel path not exercised")
        assert_well_formed_stream(progress.events, 8)
        assert progress.events[-1].fold == "trial"

    def test_parallel_full_mode_reports_honest_chunk_counts(self):
        # regression: the pooled full-mode path used to advertise
        # chunks_total == len(trials) while ships happened in imap chunks,
        # so queue_depth lied about the pool's remaining work
        progress = CollectingProgress()
        result = run_sweep(small_grid(16), workers=2, progress=progress)
        if result.meta["mode"] != "parallel":
            pytest.skip("fork start method unavailable; parallel path not exercised")
        assert_well_formed_stream(progress.events, 16)
        # 16 trials over 2 workers -> imap chunk of 2 -> 8 honest chunks
        chunk = max(1, 16 // (2 * 4))
        expected_chunks = (16 + chunk - 1) // chunk
        assert all(e.chunks_total == expected_chunks for e in progress.events)
        assert progress.events[0].chunks_done == 0
        assert progress.events[-1].chunks_done == expected_chunks
        # intermediate counts only ever move in whole completed chunks
        chunk_counts = [e.chunks_done for e in progress.events]
        assert chunk_counts == sorted(chunk_counts)
        assert all(0 <= c <= expected_chunks for c in chunk_counts)

    def test_progress_left_none_emits_nothing_and_meta_is_unchanged(self):
        without = run_sweep(small_grid(), workers=1, mode="aggregate", fold="chunk")
        progress = CollectingProgress()
        with_progress = run_sweep(
            small_grid(), workers=1, mode="aggregate", fold="chunk",
            progress=progress,
        )
        # progress is pure observation: the result's meta carries no trace of it
        assert with_progress.meta == without.meta


class TestReporters:
    def test_tty_reporter_rewrites_one_line(self):
        stream = io.StringIO()
        reporter = TTYProgressReporter(stream=stream)
        reporter(make_event(phase="start", done=0))
        reporter(make_event(done=4))
        reporter(make_event(phase="summary", done=8))
        output = stream.getvalue()
        assert "8/8 trials" in output
        assert "100.0%" in output
        assert output.endswith("\n")  # the summary line is terminal
        assert output.count("\n") == 1  # everything before it was \r-rewritten

    def test_jsonl_reporter_file_contents(self, tmp_path):
        path = str(tmp_path / "progress.jsonl")
        progress = JsonlProgressReporter(path)
        run_sweep(small_grid(), workers=1, mode="aggregate", fold="chunk",
                  progress=progress)
        records = read_jsonl(path)
        assert [r["phase"] for r in records] == ["start"] + ["chunk"] * 8 + ["summary"]
        assert all(r["event"] == "sweep.progress" for r in records)
        summary = records[-1]
        assert summary["trials_done"] == summary["trials_total"] == 8
        assert summary["elapsed_s"] >= 0.0
        assert summary["trials_per_s"] is None or summary["trials_per_s"] > 0

    def test_metrics_reporter_counts(self):
        reporter = MetricsProgressReporter()
        run_sweep(small_grid(), workers=1, mode="aggregate", fold="chunk",
                  progress=reporter)
        registry = reporter.registry
        assert registry.counter_value("sweep.runs") == 1
        assert registry.counter_value("sweep.runs_completed") == 1
        assert registry.counter_value("sweep.chunks_done") == 8
        snapshot = registry.snapshot()
        assert snapshot.gauges["sweep.trials_done"] == 8.0
        assert snapshot.gauges["sweep.queue_depth"] == 0.0


class TestResolveProgress:
    def test_none_and_callables_pass_through(self):
        assert resolve_progress(None) is None
        sentinel = CollectingProgress()
        assert resolve_progress(sentinel) is sentinel

    def test_tty_string(self):
        assert isinstance(resolve_progress("tty"), TTYProgressReporter)

    def test_jsonl_string(self, tmp_path):
        path = str(tmp_path / "p.jsonl")
        reporter = resolve_progress(f"jsonl:{path}")
        assert isinstance(reporter, JsonlProgressReporter)
        assert reporter.path == path
        reporter.close()

    def test_engine_accepts_the_string_form(self, tmp_path):
        path = str(tmp_path / "p.jsonl")
        run_sweep(small_grid(4), workers=1, mode="aggregate", fold="chunk",
                  progress=f"jsonl:{path}")
        assert [r["phase"] for r in read_jsonl(path)][0] == "start"

    @pytest.mark.parametrize("bad", ["", "jsonl:", "carrier-pigeon", 7])
    def test_invalid_forms_are_loud(self, bad):
        with pytest.raises(ConfigurationError) as err:
            resolve_progress(bad)
        assert repr(bad) in str(err.value)
