"""Telemetry from the asyncio runtime: transport, timers, cluster lifecycle.

The runtime layers never import ``repro.obs``; a metrics registry and an
event bus reach them as duck-typed constructor arguments
(``LocalTransport(metrics=...)``, ``AsyncClusterService(metrics=, events=)``)
and every hook is a no-op when they are ``None``.  These tests hand real
obs objects in and pin what each layer reports.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.db.cluster import ClusterConfig
from repro.db.transaction import Operation, Transaction
from repro.obs import EventBus, MemorySink, MetricsRegistry
from repro.runtime import AsyncClusterService, LinkPolicy, LocalTransport
from repro.runtime.cluster import run_cluster_async
from repro.runtime.runtime import AsyncRuntime
from repro.workloads.transactions import uniform_workload

pytestmark = pytest.mark.runtime


def workload(txns=4, partitions=3, seed=2):
    return uniform_workload(
        num_transactions=txns, num_partitions=partitions,
        participants_per_txn=partitions, seed=seed,
    ).transactions


def config(**overrides):
    base = dict(num_partitions=3, commit_protocol="2PC", seed=2, max_time=300.0)
    base.update(overrides)
    return ClusterConfig(**base)


class TestTransportMetrics:
    def test_sends_and_link_delays_are_counted(self):
        metrics = MetricsRegistry()
        report = run_cluster_async(
            config(), workload(), metrics=metrics,
            default_link_policy=LinkPolicy(delay_units=0.3),
        )
        assert report.committed == 4
        snapshot = metrics.snapshot()
        # every transported message is a send; with a uniform delay policy
        # every send is also delayed and observed in the histogram
        assert snapshot.counters["transport.sends"] == report.messages_total
        assert snapshot.counters["transport.delayed"] == report.messages_total
        delays = snapshot.histogram_summary("transport.link_delay_units")
        assert delays["count"] == float(report.messages_total)
        assert delays["p50"] == 0.3
        assert "transport.drops" not in snapshot.counters

    def test_drops_are_counted(self):
        metrics = MetricsRegistry()

        async def drive():
            service = AsyncClusterService(
                config(num_partitions=2, max_time=100.0),
                default_link_policy=LinkPolicy(drop_probability=1.0),
                metrics=metrics,
            )
            await service.start()
            outcome = await service.submit(
                workload(txns=1, partitions=2)[0], timeout_units=10.0
            )
            report = await service.shutdown()
            return outcome, report, service.transport

        outcome, report, transport = asyncio.run(drive())
        assert outcome is None
        counters = metrics.snapshot().counters
        assert counters["transport.drops"] == transport.dropped > 0
        assert "transport.outage_drops" not in counters

    def test_outage_drops_are_counted_separately(self):
        metrics = MetricsRegistry()

        async def drive():
            service = AsyncClusterService(
                config(num_partitions=2, max_time=100.0),
                # the link is down for the whole run: every drop is an
                # outage drop
                default_link_policy=LinkPolicy(outages=((0.0, 10_000.0),)),
                metrics=metrics,
            )
            await service.start()
            await service.submit(
                workload(txns=1, partitions=2)[0], timeout_units=10.0
            )
            await service.shutdown()
            return service.transport

        transport = asyncio.run(drive())
        counters = metrics.snapshot().counters
        assert counters["transport.outage_drops"] == transport.outage_dropped > 0
        assert counters["transport.drops"] == transport.dropped

    def test_metrics_default_to_none_and_cost_nothing(self):
        transport = LocalTransport(unit=0.001)
        assert transport.metrics is None


class TestTimerMetrics:
    def test_set_rearm_cancel_counters(self):
        metrics = MetricsRegistry()

        async def drive():
            runtime = AsyncRuntime(3, 1, unit=0.001, metrics=metrics)
            runtime.set_timer(1, 5.0, "retry")       # first arm
            runtime.set_timer(1, 9.0, "retry")       # rearm (same key)
            runtime.set_timer(2, 5.0, "retry")       # first arm, other pid
            runtime.cancel_timer(1, "retry")
            runtime.cancel_timer(1, "never-set")     # no-op: nothing to cancel
            runtime.set_timer(1, 12.0, "retry")      # rearm-after-cancel

        asyncio.run(drive())
        counters = metrics.snapshot().counters
        assert counters["runtime.timer_set"] == 2
        assert counters["runtime.timer_rearm"] == 2
        assert counters["runtime.timer_cancel"] == 1

    def test_commit_run_arms_timers(self):
        metrics = MetricsRegistry()
        run_cluster_async(config(), workload(), metrics=metrics)
        assert metrics.counter_value("runtime.timer_set") > 0


def spaced_transfers():
    """Two multi-partition transactions with a quiet window between them."""
    return [
        Transaction.of(
            "t-early",
            [Operation.write(1, "a", 10), Operation.write(2, "b", 20)],
            submit_time=0.0,
        ),
        Transaction.of(
            "t-after-rejoin",
            [Operation.write(2, "b", 21), Operation.write(3, "c", 30)],
            submit_time=60.0,
        ),
    ]


class TestClusterLifecycleTelemetry:
    def test_crash_rejoin_and_shutdown_are_reported(self):
        metrics = MetricsRegistry()
        sink = MemorySink()
        events = EventBus([sink])

        async def drive():
            service = AsyncClusterService(
                config(commit_protocol="INBAC", commit_f=1, seed=5),
                metrics=metrics, events=events,
            )
            await service.start()
            early, late = spaced_transfers()
            assert await service.submit(early, timeout_units=60.0) is not None
            service.crash_partition(2)
            recovery = service.recover_partition(2)
            assert await service.submit(late, timeout_units=60.0) is not None
            report = await service.shutdown()
            return report, recovery

        report, recovery = asyncio.run(drive())
        assert report.committed == 2

        counters = metrics.snapshot().counters
        assert counters["cluster.crashes"] == 1
        assert counters["cluster.rejoins"] == 1
        replay = metrics.snapshot().histogram_summary("cluster.wal_replay_seconds")
        assert replay["count"] == 1.0
        assert replay["mean"] >= 0.0

        names = sink.names()
        assert names[0] == "cluster.crash"
        assert "cluster.rejoin" in names
        assert names[-1] == "cluster.shutdown"
        rejoin = next(e for e in sink.events if e.name == "cluster.rejoin")
        assert rejoin.fields["pid"] == 2
        assert rejoin.fields["replayed_transactions"] == recovery.replayed_transactions
        assert rejoin.fields["wal_replay_seconds"] >= 0.0
        shutdown = next(e for e in sink.events if e.name == "cluster.shutdown")
        assert shutdown.fields["transactions"] == 2
        assert shutdown.fields["crashes"] == 1

    def test_retries_reach_the_registry(self):
        metrics = MetricsRegistry()

        async def drive():
            service = AsyncClusterService(config(), metrics=metrics)
            await service.start()
            for txn in workload():
                await service.submit(txn, timeout_units=60.0)
            report = await service.shutdown()
            return report, sum(service.client.retry_counts.values())

        report, retries = asyncio.run(drive())
        assert report.committed == 4
        assert metrics.counter_value("cluster.retries") == retries

    def test_telemetry_is_pure_observation(self):
        plain = run_cluster_async(config(), workload())
        observed = run_cluster_async(
            config(), workload(),
            metrics=MetricsRegistry(), events=EventBus([MemorySink()]),
        )
        assert observed.committed == plain.committed
        assert observed.aborted == plain.aborted
        assert [o.txn_id for o in observed.outcomes] == [
            o.txn_id for o in plain.outcomes
        ]
        assert [o.decision for o in observed.outcomes] == [
            o.decision for o in plain.outcomes
        ]
