"""Tests for transaction span tracing and the Chrome trace-event export.

The golden (``tests/goldens/trace_2pc_sim.json``) pins the byte-exact export
of the default fixed-seed simulator run: tracing is observability, but under
the simulator it inherits full determinism — same seed, same bytes.  Under
the asyncio backend the span *structure* (every committed transaction
carries EXEC / PREPARE-vote / decision / DONE) is the invariant.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.obs import CHROME_US_PER_UNIT, Span, TXN_PHASES, TraceContext
from repro.obs.export import main as export_main
from repro.obs.export import traced_cluster_run

GOLDEN = os.path.join(os.path.dirname(__file__), "goldens", "trace_2pc_sim.json")


class TestTraceContext:
    def test_begin_end_pairs(self):
        tracer = TraceContext()
        tracer.begin(1, "tx-0", "txn", 2.0, attempt=1)
        assert tracer.open_count() == 1
        tracer.end(1, "tx-0", "txn", 9.0, decision="COMMIT")
        assert tracer.open_count() == 0
        (span,) = tracer.spans
        assert (span.start, span.end, span.duration) == (2.0, 9.0, 7.0)
        assert span.args == {"attempt": 1, "decision": "COMMIT"}

    def test_unmatched_end_is_dropped(self):
        tracer = TraceContext()
        tracer.end(1, "tx-0", "txn", 5.0)
        assert tracer.spans == []

    def test_end_never_precedes_start(self):
        tracer = TraceContext()
        tracer.begin(1, "tx-0", "txn", 5.0)
        tracer.end(1, "tx-0", "txn", 3.0)  # clock went backwards? clamp
        tracer.complete(2, "tx-0", "EXEC", 7.0, 6.0)
        assert all(span.duration == 0.0 for span in tracer.spans)

    def test_re_begin_restarts_the_open_span(self):
        tracer = TraceContext()
        tracer.begin(1, "tx-0", "txn", 1.0, attempt=1)
        tracer.begin(1, "tx-0", "txn", 4.0, attempt=2)  # retry path
        tracer.end(1, "tx-0", "txn", 6.0)
        (span,) = tracer.spans
        assert span.start == 4.0 and span.args["attempt"] == 2

    def test_queries(self):
        tracer = TraceContext()
        tracer.complete(1, "tx-1", "EXEC", 0.0, 1.0)
        tracer.complete(2, "tx-0", "PREPARE-vote", 1.0, 2.0)
        tracer.complete(2, "tx-1", "PREPARE-vote", 1.0, 2.0)
        tracer.complete(1, "tx-1", "EXEC", 3.0, 4.0)  # retry: same phase twice
        assert tracer.transaction_ids() == ["tx-1", "tx-0"]
        assert tracer.phases_of("tx-1") == ["EXEC", "PREPARE-vote"]
        assert len(tracer.spans_of("tx-1")) == 3

    def test_span_jsonable_sorts_args(self):
        span = Span(name="EXEC", txn_id="tx-0", pid=1, start=0.0, end=1.0,
                    args={"b": 2, "a": 1})
        assert list(span.to_jsonable()["args"]) == ["a", "b"]


class TestChromeExport:
    def _tracer(self):
        tracer = TraceContext()
        tracer.complete(2, "tx-1", "PREPARE-vote", 1.0, 2.5, vote=1)
        tracer.complete(1, "tx-0", "EXEC", 0.0, 1.0)
        tracer.complete(1, "tx-1", "EXEC", 0.5, 1.0)
        return tracer

    def test_layout_processes_and_lanes(self):
        chrome = self._tracer().to_chrome()
        meta = [e for e in chrome["traceEvents"] if e["ph"] == "M"]
        spans = [e for e in chrome["traceEvents"] if e["ph"] == "X"]
        assert [m["pid"] for m in meta] == [1, 2]
        assert [m["args"]["name"] for m in meta] == ["P1", "P2"]
        # lanes numbered by first appearance in start order: tx-0 starts first
        lanes = {e["args"]["txn_id"]: e["tid"] for e in spans}
        assert lanes == {"tx-0": 1, "tx-1": 2}
        # one unit of U renders as 1 ms (1000 us)
        prepare = next(e for e in spans if e["name"] == "PREPARE-vote")
        assert prepare["ts"] == 1.0 * CHROME_US_PER_UNIT
        assert prepare["dur"] == 1.5 * CHROME_US_PER_UNIT
        assert prepare["args"]["vote"] == 1

    def test_chrome_json_is_loadable_and_stable(self):
        first = self._tracer().chrome_json()
        second = self._tracer().chrome_json()
        assert first == second
        payload = json.loads(first)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["us_per_unit"] == CHROME_US_PER_UNIT


class TestTracedSimRun:
    def test_every_committed_txn_has_all_phases(self):
        report, tracer = traced_cluster_run()
        assert report.committed == len(report.outcomes) == 4
        assert tracer.open_count() == 0
        for txn_id in tracer.transaction_ids():
            phases = tracer.phases_of(txn_id)
            for phase in TXN_PHASES:
                assert phase in phases, (txn_id, phases)
            assert "txn" in phases  # the submission-to-ack envelope

    def test_fixed_seed_export_matches_the_golden(self):
        """Same seed, same bytes — the tracing determinism pin.

        Regenerate after an intentional trace-shape change with::

            PYTHONPATH=src python -c "from repro.obs.export import *; \
r, t = traced_cluster_run(); write_chrome(t, 'tests/goldens/trace_2pc_sim.json')"
        """
        _, tracer = traced_cluster_run()
        with open(GOLDEN, encoding="utf-8") as handle:
            golden = handle.read()
        assert tracer.chrome_json() + "\n" == golden

    def test_tracer_attachment_does_not_change_the_report(self):
        traced_report, _ = traced_cluster_run(seed=11)
        from repro.db.cluster import ClusterConfig, run_cluster
        from repro.workloads import uniform_workload

        config = ClusterConfig(
            num_partitions=3, commit_protocol="2PC", commit_f=1, seed=11,
            max_time=400.0,
        )
        workload = uniform_workload(
            num_transactions=4, num_partitions=3, participants_per_txn=3, seed=11
        )
        plain_report = run_cluster(config, workload.transactions, backend="sim")
        assert traced_report.outcomes == plain_report.outcomes
        assert traced_report.committed == plain_report.committed
        assert traced_report.end_time == plain_report.end_time


@pytest.mark.runtime
class TestTracedAsyncRun:
    def test_asyncio_backend_traces_every_commit(self):
        report, tracer = traced_cluster_run(backend="asyncio", txns=3, seed=3)
        assert report.backend == "asyncio"
        assert report.committed >= 1
        from repro.protocols.base import COMMIT

        committed = {
            outcome.txn_id for outcome in report.outcomes
            if outcome.decision == COMMIT
        }
        assert tracer.clock == "wall-units"
        for txn_id in sorted(committed):
            phases = tracer.phases_of(txn_id)
            for phase in TXN_PHASES:
                assert phase in phases, (txn_id, phases)


class TestExportCli:
    def test_cli_writes_trace_and_summary(self, tmp_path, capsys):
        out = str(tmp_path / "trace.json")
        rc = export_main(["--chrome", out])
        assert rc == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["backend"] == "sim"
        assert summary["committed"] == 4
        assert summary["transactions_traced"] == 4
        with open(out, encoding="utf-8") as handle:
            payload = json.load(handle)
        names = {e["name"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert set(TXN_PHASES) <= names
