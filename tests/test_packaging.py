"""Packaging discovery: every subpackage ships, and the wheel layout imports.

The failure mode this battery exists for: a new subpackage (``repro.runtime``
was the latest) works fine under ``PYTHONPATH=src`` but silently never ships
because a hand-maintained package list went stale.  ``setup.py`` therefore
uses ``find_packages(where="src")``; these tests pin that choice and prove it
by emulating what setuptools installs — copying exactly the discovered
packages' modules into a scratch site-packages directory — and importing the
runtime from there in a clean subprocess (no ``src/`` on the path).
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

from setuptools import find_packages

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


def discovered_packages():
    return sorted(find_packages(where=str(SRC)))


class TestDiscovery:
    def test_every_init_bearing_directory_is_discovered(self):
        on_disk = sorted(
            str(init.parent.relative_to(SRC)).replace("/", ".")
            for init in SRC.rglob("__init__.py")
            if "__pycache__" not in init.parts
        )
        assert discovered_packages() == on_disk

    def test_the_new_subsystems_are_included(self):
        packages = discovered_packages()
        for required in ("repro", "repro.env", "repro.runtime", "repro.db",
                         "repro.sim", "repro.lint", "repro.lint.rules"):
            assert required in packages, f"{required} missing from discovery"

    def test_setup_py_uses_discovery_not_a_hand_list(self):
        text = (REPO_ROOT / "setup.py").read_text(encoding="utf-8")
        assert "find_packages" in text
        assert 'package_dir={"": "src"}' in text


class TestInstalledLayout:
    def test_import_repro_runtime_from_installed_wheel_layout(self, tmp_path):
        """Emulate the installed layout and import the runtime from it.

        Copies exactly what setuptools would install — each *discovered*
        package's own ``*.py`` modules, nothing recursive — into a scratch
        site-packages; a subpackage absent from discovery is then absent from
        the layout and the import below fails.
        """
        site = tmp_path / "site-packages"
        for package in discovered_packages():
            pkg_dir = site / Path(*package.split("."))
            pkg_dir.mkdir(parents=True, exist_ok=True)
            src_dir = SRC / Path(*package.split("."))
            for module in sorted(src_dir.glob("*.py")):
                shutil.copy(module, pkg_dir / module.name)
        probe = (
            "import repro.runtime, repro.env.conformance, repro.db.cluster\n"
            "from repro.runtime import run_commit, AsyncClusterService\n"
            "from repro.protocols.registry import protocol_names\n"
            "assert len(protocol_names()) >= 10\n"
            "print('ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(site), "PATH": "/usr/bin:/bin"},
            cwd=str(tmp_path),  # not the repo root: src/ must not leak in
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"
