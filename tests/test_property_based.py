"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lattice import PropertyPair, all_cells, robustness_leq
from repro.core.metrics import messages_until_last_decision
from repro.core.table1 import cell_bound, delay_lower_bound, message_lower_bound
from repro.db.locks import LockManager, LockMode
from repro.db.store import VersionedStore
from repro.db.wal import COMMIT, PREPARE, WriteAheadLog
from repro.protocols.base import logical_and
from repro.sim.trace import Trace

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
prop_subsets = st.sets(st.sampled_from(["A", "V", "T"]), max_size=3).map(
    lambda s: "".join(sorted(s))
)
nf_pairs = st.tuples(st.integers(min_value=2, max_value=40), st.data())


@st.composite
def property_pairs(draw):
    cf = draw(prop_subsets)
    nf = draw(prop_subsets)
    return PropertyPair.of(cf, nf)


@st.composite
def valid_nf(draw):
    n = draw(st.integers(min_value=2, max_value=50))
    f = draw(st.integers(min_value=1, max_value=n - 1))
    return n, f


# --------------------------------------------------------------------------- #
# lattice / Table 1 invariants
# --------------------------------------------------------------------------- #
class TestLatticeInvariants:
    @given(property_pairs())
    def test_canonicalisation_is_idempotent_and_canonical(self, pair):
        canonical = pair.canonicalised()
        assert canonical.is_canonical()
        assert canonical.canonicalised() == canonical
        assert canonical in all_cells()

    @given(property_pairs(), property_pairs())
    def test_robustness_order_is_antisymmetric_on_distinct_pairs(self, a, b):
        if robustness_leq(a, b) and robustness_leq(b, a):
            assert a == b

    @given(property_pairs(), property_pairs())
    def test_bounds_are_monotone_in_robustness(self, a, b):
        """More robust problems can never have *smaller* lower bounds."""
        if robustness_leq(a, b):
            assert delay_lower_bound(a) <= delay_lower_bound(b)
            assert message_lower_bound(a, 7, 3) <= message_lower_bound(b, 7, 3)

    @given(property_pairs(), valid_nf())
    def test_equivalent_empty_cell_has_same_bounds(self, pair, nf):
        n, f = nf
        equivalent = pair.canonicalised()
        assert message_lower_bound(pair, n, f) == message_lower_bound(equivalent, n, f)
        assert delay_lower_bound(pair) == delay_lower_bound(equivalent)

    @given(valid_nf())
    def test_bound_formulas_are_ordered(self, nf):
        n, f = nf
        weakest = message_lower_bound(PropertyPair.of("", ""), n, f)
        sync = message_lower_bound(PropertyPair.of("V", ""), n, f)
        validity_nf = message_lower_bound(PropertyPair.of("V", "V"), n, f)
        indulgent = message_lower_bound(PropertyPair.indulgent_atomic_commit(), n, f)
        assert weakest <= sync <= indulgent
        assert weakest <= sync <= validity_nf + f
        assert indulgent == validity_nf + f

    @given(valid_nf())
    def test_fraction_rendering_roundtrip(self, nf):
        n, f = nf
        bound = cell_bound(PropertyPair.indulgent_atomic_commit())
        assert bound.as_fraction(n, f) == f"2/{2 * n - 2 + f}"


# --------------------------------------------------------------------------- #
# logical AND of votes
# --------------------------------------------------------------------------- #
class TestVoteAlgebra:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=30))
    def test_and_is_zero_iff_some_vote_is_zero(self, votes):
        assert logical_and(votes) == (0 if 0 in votes else 1)

    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=10),
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=10),
    )
    def test_and_is_associative_over_concatenation(self, a, b):
        assert logical_and(a + b) == logical_and([logical_and(a), logical_and(b)])


# --------------------------------------------------------------------------- #
# versioned store
# --------------------------------------------------------------------------- #
class TestStoreInvariants:
    @given(
        st.lists(
            st.tuples(st.sampled_from("abcde"), st.integers(-100, 100)),
            min_size=1,
            max_size=50,
        )
    )
    def test_get_returns_last_write_and_versions_increase(self, writes):
        store = VersionedStore()
        last = {}
        previous_version = 0
        for key, value in writes:
            version = store.apply(key, value)
            assert version > previous_version
            previous_version = version
            last[key] = value
        for key, value in last.items():
            assert store.get(key) == value
        assert store.snapshot() == last

    @given(
        st.dictionaries(st.sampled_from("abcdef"), st.integers(), min_size=1, max_size=6),
        st.dictionaries(st.sampled_from("abcdef"), st.integers(), min_size=1, max_size=6),
    )
    def test_snapshot_reads_are_stable_under_later_writes(self, first, second):
        store = VersionedStore()
        version = store.apply_many(first)
        store.apply_many(second)
        for key, value in first.items():
            assert store.get(key, at_version=version) == value


# --------------------------------------------------------------------------- #
# lock manager
# --------------------------------------------------------------------------- #
class TestLockInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["t1", "t2", "t3"]),
                st.sampled_from(["x", "y", "z"]),
                st.sampled_from([LockMode.SHARED, LockMode.EXCLUSIVE]),
            ),
            max_size=40,
        )
    )
    def test_exclusive_locks_never_shared_between_transactions(self, requests):
        locks = LockManager()
        granted_exclusive = {}
        for txn, key, mode in requests:
            if locks.try_acquire(txn, key, mode):
                if mode == LockMode.EXCLUSIVE:
                    granted_exclusive[key] = txn
            holders = locks.holders(key)
            # invariant: an exclusively held key has exactly one holder
            if key in granted_exclusive and granted_exclusive[key] in holders:
                exclusive_holder = granted_exclusive[key]
                assert holders == {exclusive_holder} or exclusive_holder not in holders

    @given(st.lists(st.sampled_from(["x", "y", "z", "w"]), min_size=1, max_size=10))
    def test_release_all_leaves_no_residue(self, keys):
        locks = LockManager()
        for key in keys:
            locks.try_acquire("t1", key, LockMode.EXCLUSIVE)
        locks.release_all("t1")
        assert locks.locked_keys() == []
        for key in keys:
            assert locks.try_acquire("t2", key, LockMode.EXCLUSIVE)


# --------------------------------------------------------------------------- #
# write-ahead log replay
# --------------------------------------------------------------------------- #
class TestWalInvariants:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["t1", "t2", "t3", "t4"]),
                st.dictionaries(st.sampled_from("abc"), st.integers(), min_size=1, max_size=3),
                st.booleans(),
            ),
            max_size=20,
        )
    )
    def test_replay_contains_exactly_the_committed_writes(self, entries):
        wal = WriteAheadLog()
        committed = {}
        seen = set()
        for index, (txn, writes, commit) in enumerate(entries):
            txn_id = f"{txn}-{index}"
            if txn_id in seen:
                continue
            seen.add(txn_id)
            wal.append(PREPARE, txn_id, writes=writes)
            if commit:
                wal.append(COMMIT, txn_id, writes=writes)
                committed.update(writes)
        replayed = wal.replay().snapshot()
        assert set(replayed) <= set(committed)
        # committed keys end with some committed value (ordering aside, the
        # last committed write of each key is what replay yields)
        for key in replayed:
            assert key in committed


# --------------------------------------------------------------------------- #
# cluster invariants under random workloads and crash points
# --------------------------------------------------------------------------- #
class TestClusterInvariantProperties:
    """Random transaction workloads + adversarial crash points: for every
    correct commit protocol the three cluster invariants (atomicity,
    WAL-replay durability, lock safety) must hold on every run.  Everything
    is derived from the drawn seed, and failures print the reproducing
    ``(seed, decisions)`` pair — the same contract `repro.explore` uses."""

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=1, max_value=4),   # crash victim (partition or client)
        st.integers(min_value=0, max_value=6),   # phase-boundary ordinal
        st.sampled_from(["2PC", "INBAC"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_invariants_hold_under_any_crash_point(self, seed, pid, point, protocol):
        from repro.db import ClusterConfig, run_cluster
        from repro.explore import CrashPoint
        from repro.workloads import uniform_workload

        workload = uniform_workload(
            3, num_partitions=3, participants_per_txn=3, inter_arrival=2.0,
            seed=seed,
        )
        report = run_cluster(
            ClusterConfig(
                num_partitions=3,
                commit_protocol=protocol,
                seed=seed,
                max_time=200.0,
                controller=CrashPoint(pid=pid, point=point),
            ),
            workload.transactions,
        )
        assert report.invariants.holds, (
            f"cluster invariants violated; reproduce with "
            f"(seed={seed}, decisions={report.schedule_decisions}): "
            f"{report.invariants.violations}"
        )

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.floats(min_value=0.0, max_value=0.4, allow_nan=False),
    )
    @settings(max_examples=15, deadline=None)
    def test_invariants_hold_under_random_walk_schedules(self, seed, crash_prob):
        from repro.db import ClusterConfig, run_cluster
        from repro.explore import RandomWalk
        from repro.workloads import hotspot_workload

        # contended workload: aborts happen, so the invariants are exercised
        # on mixed commit/abort runs, not just all-commit ones
        workload = hotspot_workload(
            4, num_partitions=3, inter_arrival=1.0, seed=seed
        )
        report = run_cluster(
            ClusterConfig(
                num_partitions=3,
                commit_protocol="INBAC",
                seed=seed,
                max_time=200.0,
                controller=RandomWalk(
                    seed=seed, defer_prob=0.2, crash_prob=crash_prob
                ),
            ),
            workload.transactions,
        )
        assert report.invariants.holds, (
            f"cluster invariants violated; reproduce with "
            f"(seed={seed}, decisions={report.schedule_decisions}): "
            f"{report.invariants.violations}"
        )

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_recorded_decisions_replay_to_the_same_outcomes(self, seed):
        from repro.db import ClusterConfig, run_cluster
        from repro.explore import RandomWalk, ScheduleTrace
        from repro.workloads import bank_transfer_workload

        workload = bank_transfer_workload(3, num_partitions=3, seed=seed)

        def run(controller):
            return run_cluster(
                ClusterConfig(
                    num_partitions=3, commit_protocol="2PC", seed=seed,
                    max_time=200.0, controller=controller,
                ),
                workload.transactions,
            )

        explored = run(RandomWalk(seed=seed, defer_prob=0.25, crash_prob=0.1))
        trace = ScheduleTrace(
            strategy="random-walk", seed=seed, decisions=explored.schedule_decisions
        )
        replayed = run(trace.replay_controller())
        assert replayed.trace_fingerprint == explored.trace_fingerprint, (
            f"replay diverged for (seed={seed}, "
            f"decisions={explored.schedule_decisions})"
        )
        assert {o.txn_id: o.decision for o in replayed.outcomes} == {
            o.txn_id: o.decision for o in explored.outcomes
        }


# --------------------------------------------------------------------------- #
# trace metrics
# --------------------------------------------------------------------------- #
class TestTraceInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 5),
                st.integers(1, 5),
                st.floats(0, 10, allow_nan=False),
                st.floats(0.1, 5, allow_nan=False),
            ),
            max_size=40,
        ),
        st.floats(0, 20, allow_nan=False),
    )
    def test_messages_until_deadline_never_exceeds_total(self, sends, decision_time):
        trace = Trace(n=5, f=1)
        for index, (src, dst, send_time, delay) in enumerate(sends):
            trace.record_send(index, src, dst, ("m",), send_time, send_time + delay,
                              counted=src != dst)
        trace.record_proposal(1, 1, 0.0)
        trace.record_decision(1, 1, decision_time)
        until = messages_until_last_decision(trace)
        assert 0 <= until <= trace.message_count()
        # counting is monotone in the deadline
        assert trace.messages_received_by(decision_time) <= trace.messages_received_by(
            decision_time + 100
        )

    @given(st.integers(2, 8), st.integers(1, 7))
    @settings(suppress_health_check=[HealthCheck.filter_too_much])
    def test_nice_execution_invariants_hold_for_inbac(self, n, f):
        """End-to-end property: for any valid (n, f), INBAC's nice execution
        decides commit everywhere in 2 delays with 2fn messages."""
        if f >= n:
            f = n - 1
        from repro.protocols import INBAC
        from repro.sim.runner import run_nice_execution

        result = run_nice_execution(INBAC, n=n, f=f)
        assert set(result.decisions().values()) == {1}
        assert len(result.decisions()) == n
        assert result.trace.last_decision_time() == 2.0
        assert result.trace.message_count() == 2 * f * n


# --------------------------------------------------------------------------- #
# percentile digests
# --------------------------------------------------------------------------- #
class TestPercentileDigests:
    """``_digest_percentile`` must select the same element as ``_percentile``.

    The counters trace level ships a value -> multiplicity digest instead of
    the raw latency list; the aggregate fingerprint is only stable across
    trace levels if both percentile paths agree down to the byte.
    """

    @given(
        st.dictionaries(
            st.floats(min_value=0.001, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            st.integers(min_value=1, max_value=20),
            min_size=1,
            max_size=30,
        ),
        st.sampled_from([0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 100.0]),
    )
    @settings(max_examples=200, deadline=None)
    def test_digest_matches_expanded_list(self, counts, q):
        from repro.exp.results import _digest_percentile, _percentile

        expanded = sorted(
            value for value, mult in counts.items() for _ in range(mult)
        )
        total = sum(counts.values())
        assert _digest_percentile(counts, total, q) == _percentile(expanded, q)

    @given(st.floats(min_value=0.001, max_value=100.0,
                     allow_nan=False, allow_infinity=False),
           st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_single_value_digest_is_that_value_at_every_q(self, value, mult):
        from repro.exp.results import _digest_percentile, _percentile

        for q in (0.0, 50.0, 99.0, 100.0):
            assert _digest_percentile({value: mult}, mult, q) == value
            assert _percentile([value] * mult, q) == value

    def test_empty_digest_is_none(self):
        from repro.exp.results import _digest_percentile, _percentile

        assert _digest_percentile({}, 0, 50.0) is None
        assert _percentile([], 50.0) is None


# --------------------------------------------------------------------------- #
# bucket queue vs binary heap
# --------------------------------------------------------------------------- #
class TestBucketQueueEquivalence:
    """Random run configurations never distinguish the two event queues."""

    @given(
        st.sampled_from(["fixed", "uniform", "lognormal", "flaky-link"]),
        st.sampled_from(["failure-free", "crash", "rejoin"]),
        st.integers(min_value=0, max_value=2**16),
        st.lists(st.sampled_from([0, 1]), min_size=4, max_size=4),
    )
    @settings(max_examples=30, deadline=None)
    def test_fingerprint_identical_on_bucket_and_heap(
        self, delay_name, fault_name, seed, votes
    ):
        from repro.exp.registry import NamedDelayFactory, NamedFaultFactory
        from repro.protocols import INBAC
        from repro.sim.runner import Simulation

        fingerprints = []
        for event_queue in ("heap", "bucket"):
            sim = Simulation(
                n=4,
                f=1,
                process_class=INBAC,
                delay_model=NamedDelayFactory(delay_name, {})(seed),
                fault_plan=NamedFaultFactory(fault_name, {})(),
                seed=seed,
                event_queue=event_queue,
            )
            fingerprints.append(sim.run(votes=votes).trace.fingerprint())
        assert fingerprints[0] == fingerprints[1]
