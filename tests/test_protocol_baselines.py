"""Tests for the baseline protocols: 2PC, 3PC, PaxosCommit, Faster PaxosCommit."""

from __future__ import annotations

import pytest

from conftest import assert_agreement, assert_all_decided, nbac_report, run_protocol
from repro.protocols import (
    FasterPaxosCommit,
    PaxosCommit,
    ThreePhaseCommit,
    TwoPhaseCommit,
)
from repro.sim.faults import DelayRule, FaultPlan


class TestTwoPhaseCommit:
    def test_commit_when_all_yes(self):
        result = run_protocol(TwoPhaseCommit, 5, 1, [1] * 5)
        assert_all_decided(result, value=1)

    def test_abort_when_any_no(self):
        result = run_protocol(TwoPhaseCommit, 5, 1, [1, 1, 1, 0, 1])
        assert_all_decided(result, value=0)

    def test_participant_voting_no_aborts_unilaterally_and_immediately(self):
        result = run_protocol(TwoPhaseCommit, 4, 1, [1, 0, 1, 1])
        assert result.trace.decisions[2].time == 0.0

    def test_blocking_when_coordinator_crashes_before_outcome(self):
        # the defining weakness of 2PC (Section 6.2): participants that voted
        # yes wait forever once the coordinator is gone
        plan = FaultPlan.crash(1, at=1.0)
        result = run_protocol(TwoPhaseCommit, 4, 1, [1] * 4, fault_plan=plan, max_time=60)
        report = nbac_report(result)
        assert not report.termination.holds
        assert report.agreement.holds
        assert report.validity.holds

    def test_participant_crash_leads_to_abort(self):
        plan = FaultPlan.crash(3, at=0.0)
        result = run_protocol(TwoPhaseCommit, 4, 1, [1] * 4, fault_plan=plan)
        surviving = {pid: v for pid, v in result.decisions().items()}
        assert set(surviving.values()) == {0}

    def test_agreement_under_network_failure(self):
        # a late vote makes the coordinator abort; everyone still agrees
        plan = FaultPlan.delay_messages(src=4, dst=1, delay=20.0)
        result = run_protocol(TwoPhaseCommit, 4, 1, [1] * 4, fault_plan=plan)
        assert_agreement(result)
        report = nbac_report(result)
        assert report.validity.holds  # a failure occurred so abort is valid

    def test_custom_coordinator(self):
        result = run_protocol(
            TwoPhaseCommit, 4, 1, [1] * 4, protocol_kwargs={"coordinator": 3}
        )
        votes = [m for m in result.trace.counted_messages() if m.payload[0] == "VOTE"]
        assert {m.dst for m in votes} == {3}


class TestThreePhaseCommit:
    def test_commit_when_all_yes(self):
        result = run_protocol(ThreePhaseCommit, 4, 1, [1] * 4)
        assert_all_decided(result, value=1)

    def test_abort_when_any_no(self):
        result = run_protocol(ThreePhaseCommit, 4, 1, [1, 1, 0, 1])
        assert_all_decided(result, value=0)

    def test_non_blocking_on_coordinator_crash_before_precommit(self):
        plan = FaultPlan.crash(1, at=0.5)
        result = run_protocol(ThreePhaseCommit, 4, 1, [1] * 4, fault_plan=plan, max_time=80)
        report = nbac_report(result)
        assert report.termination.holds
        assert report.agreement.holds

    def test_non_blocking_on_coordinator_crash_after_precommit(self):
        plan = FaultPlan.crash(1, at=2.5)
        result = run_protocol(ThreePhaseCommit, 4, 1, [1] * 4, fault_plan=plan, max_time=80)
        report = nbac_report(result)
        assert report.termination.holds
        assert report.agreement.holds

    def test_recovery_commits_when_someone_precommitted(self):
        plan = FaultPlan.crash(1, at=3.2)  # after PRECOMMIT went out, before COMMIT
        result = run_protocol(ThreePhaseCommit, 4, 1, [1] * 4, fault_plan=plan, max_time=80)
        survivors = {pid: v for pid, v in result.decisions().items() if pid != 1}
        assert set(survivors.values()) <= {1}


class TestPaxosCommit:
    def test_commit_when_all_yes(self):
        result = run_protocol(PaxosCommit, 5, 2, [1] * 5)
        assert_all_decided(result, value=1)
        assert result.trace.last_decision_time() == 3.0

    def test_abort_when_any_no(self):
        result = run_protocol(PaxosCommit, 5, 2, [1, 0, 1, 1, 1])
        assert_all_decided(result, value=0)

    def test_leader_crash_is_tolerated(self):
        plan = FaultPlan.crash(1, at=1.5)
        result = run_protocol(PaxosCommit, 5, 2, [1] * 5, fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds

    def test_acceptor_crash_is_tolerated(self):
        plan = FaultPlan.crash(2, at=0.0)
        result = run_protocol(PaxosCommit, 5, 2, [1] * 5, fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds

    def test_indulgence_under_delayed_reports(self):
        plan = FaultPlan(
            delay_rules=[DelayRule(predicate=lambda p: p[0] == "P2B", delay=25.0)]
        )
        result = run_protocol(PaxosCommit, 5, 2, [1] * 5, fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds

    def test_acceptors_are_first_f_plus_one(self):
        result = run_protocol(PaxosCommit, 6, 2, [1] * 6)
        assert list(result.process(1).acceptors()) == [1, 2, 3]
        assert result.process(4).is_acceptor is False
        assert result.process(3).is_acceptor is True


class TestFasterPaxosCommit:
    def test_commit_in_two_delays(self):
        result = run_protocol(FasterPaxosCommit, 5, 2, [1] * 5)
        assert_all_decided(result, value=1)
        assert result.trace.last_decision_time() == 2.0

    def test_abort_when_any_no(self):
        result = run_protocol(FasterPaxosCommit, 5, 2, [0, 1, 1, 1, 1])
        assert_all_decided(result, value=0)

    def test_acceptor_crash_is_tolerated(self):
        plan = FaultPlan.crash(3, at=0.0)
        result = run_protocol(FasterPaxosCommit, 5, 2, [1] * 5, fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds

    def test_agreement_when_one_rm_fast_commits_and_others_recover(self):
        # P2B broadcasts towards P4 and P5 are late: they must recover through
        # the acceptor query path while the others fast-commit; everyone must
        # agree on commit (the invariant discussed in the module docstring)
        plan = FaultPlan(
            delay_rules=[
                DelayRule(dst=4, predicate=lambda p: p[0] == "P2B", delay=20.0),
                DelayRule(dst=5, predicate=lambda p: p[0] == "P2B", delay=20.0),
            ]
        )
        result = run_protocol(FasterPaxosCommit, 5, 2, [1] * 5, fault_plan=plan)
        assert_all_decided(result)
        assert_agreement(result)
        assert result.decisions()[1] == 1

    def test_uses_more_messages_but_fewer_delays_than_paxos_commit(self):
        n, f = 6, 2
        faster = run_protocol(FasterPaxosCommit, n, f, [1] * n).trace
        classic = run_protocol(PaxosCommit, n, f, [1] * n).trace
        assert faster.last_decision_time() < classic.last_decision_time()
        assert faster.message_count() > classic.message_count()
