"""Detailed tests of the INBAC protocol (Section 5 and Appendix A/B)."""

from __future__ import annotations

import pytest

from conftest import assert_agreement, assert_all_decided, nbac_report, run_protocol
from repro.consensus import FixedLeaderConsensus
from repro.protocols.inbac import (
    BRANCH_ASK_HELP,
    BRANCH_CONS_AND,
    BRANCH_CONSENSUS_DECIDE,
    BRANCH_FAST_ABORT,
    BRANCH_FAST_DECIDE,
    INBAC,
)
from repro.sim.faults import DelayRule, FaultPlan


class TestBackupSets:
    """The backup-set construction of Section 5.2."""

    def test_backup_set_of_outsiders_is_first_f(self):
        result = run_protocol(INBAC, 5, 2, [1] * 5)
        for pid in (3, 4, 5):
            assert result.process(pid).backup_set() == {1, 2}

    def test_backup_set_of_first_f_includes_pf_plus_1(self):
        result = run_protocol(INBAC, 5, 2, [1] * 5)
        assert result.process(1).backup_set() == {2, 3}
        assert result.process(2).backup_set() == {1, 3}

    def test_every_backup_set_has_size_f(self):
        for n, f in [(4, 1), (5, 2), (6, 5)]:
            result = run_protocol(INBAC, n, f, [1] * n)
            for pid in range(1, n + 1):
                assert len(result.process(pid).backup_set()) == f

    def test_vote_messages_go_exactly_to_the_backup_set(self):
        result = run_protocol(INBAC, 5, 2, [1] * 5)
        votes = [m for m in result.trace.counted_messages() if m.payload[0] == "V"]
        for pid in range(1, 6):
            destinations = {m.dst for m in votes if m.src == pid}
            assert destinations == result.process(pid).backup_set()


class TestNicePath:
    def test_every_process_takes_the_fast_decide_branch(self):
        result = run_protocol(INBAC, 5, 2, [1] * 5)
        for pid in range(1, 6):
            assert result.process(pid).branch == BRANCH_FAST_DECIDE

    def test_acknowledgements_batch_several_votes_into_one_message(self):
        # Lemma 6 / the "necessary design": a backup acknowledges a *set* of
        # votes in a single [C, collection] message
        result = run_protocol(INBAC, 5, 2, [1] * 5)
        acks = [m for m in result.trace.counted_messages() if m.payload[0] == "C"]
        assert all(len(m.payload[1]) >= 2 for m in acks)

    def test_commit_decided_exactly_at_two_delays(self):
        result = run_protocol(INBAC, 6, 2, [1] * 6)
        assert all(rec.time == 2.0 for rec in result.trace.decisions.values())


class TestFailureFreeAborts:
    def test_single_no_vote_aborts_everywhere(self):
        result = run_protocol(INBAC, 5, 2, [1, 1, 0, 1, 1])
        assert_all_decided(result, value=0)
        report = nbac_report(result)
        assert report.validity.holds and report.agreement.holds and report.termination.holds

    def test_all_no_votes_abort(self):
        result = run_protocol(INBAC, 4, 1, [0, 0, 0, 0])
        assert_all_decided(result, value=0)

    def test_without_fast_abort_the_abort_takes_two_delays(self):
        result = run_protocol(INBAC, 5, 2, [1, 0, 1, 1, 1])
        assert result.trace.last_decision_time() == 2.0

    def test_fast_abort_optimisation_decides_in_at_most_one_delay(self):
        result = run_protocol(
            INBAC, 5, 2, [1, 0, 1, 1, 1], protocol_kwargs={"fast_abort": True}
        )
        assert_all_decided(result, value=0)
        assert result.trace.last_decision_time() <= 1.0
        assert result.process(2).branch == BRANCH_FAST_ABORT


class TestCrashFailures:
    @pytest.mark.parametrize("crashed,at", [(1, 0.0), (2, 0.0), (5, 0.0), (3, 1.0), (1, 1.5)])
    def test_single_crash_preserves_nbac(self, crashed, at):
        result = run_protocol(INBAC, 5, 2, [1] * 5, fault_plan=FaultPlan.crash(crashed, at))
        report = nbac_report(result)
        assert report.validity.holds
        assert report.agreement.holds
        assert report.termination.holds

    def test_f_crashes_of_all_backups_still_terminates(self):
        # both backup processes crash before sending anything: the remaining
        # processes must go through the HELP path and consensus
        plan = FaultPlan.crashes_at({1: 0.0, 2: 0.0})
        result = run_protocol(INBAC, 5, 2, [1] * 5, fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds
        branches = {result.process(pid).branch for pid in (3, 4, 5)}
        assert BRANCH_ASK_HELP in branches

    def test_late_crash_after_acks_commits(self):
        # the crash happens after the acknowledgements are out: survivors
        # still observe f correct acks and decide 1 in two delays
        plan = FaultPlan.crash(1, at=1.5)
        result = run_protocol(INBAC, 5, 2, [1] * 5, fault_plan=plan)
        surviving = {pid: v for pid, v in result.decisions().items() if pid != 1}
        assert set(surviving.values()) == {1}

    def test_crash_with_no_vote_aborts(self):
        plan = FaultPlan.crash(4, at=0.5)
        result = run_protocol(INBAC, 5, 2, [1, 1, 1, 0, 1], fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds and report.validity.holds


class TestNetworkFailures:
    def test_delayed_acknowledgements_fall_back_to_consensus(self):
        # acknowledgements from P1 are delayed beyond the bound: receivers
        # cannot take the fast branch, so they settle through consensus and
        # must still agree (indulgence)
        plan = FaultPlan(
            delay_rules=[DelayRule(src=1, after_time=0.5, delay=40.0)],
            description="late acks from P1",
        )
        result = run_protocol(INBAC, 5, 2, [1] * 5, fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds
        branches = [result.process(pid).branch for pid in range(1, 6)]
        assert any(b in (BRANCH_CONS_AND, BRANCH_CONSENSUS_DECIDE) for b in branches)

    def test_all_commit_traffic_delayed_everyone_agrees(self):
        plan = FaultPlan(
            delay_rules=[
                DelayRule(predicate=lambda p: isinstance(p, tuple) and p[0] == "C", delay=30.0)
            ],
            description="all acknowledgements late",
        )
        result = run_protocol(INBAC, 4, 1, [1] * 4, fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds

    def test_indulgence_under_combined_crash_and_delay(self):
        plan = FaultPlan.crash(2, at=0.0).merged_with(
            FaultPlan.delay_messages(src=1, delay=25.0, after_time=0.5)
        )
        result = run_protocol(INBAC, 5, 2, [1] * 5, fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds
        assert report.termination.holds
        assert report.validity.holds  # abort is allowed, commit-validity must hold


class TestConsensusPluggability:
    def test_runs_with_the_fixed_leader_consensus(self):
        plan = FaultPlan.crash(5, at=0.0)
        result = run_protocol(
            INBAC,
            5,
            2,
            [1] * 5,
            fault_plan=plan,
            protocol_kwargs={"consensus_class": FixedLeaderConsensus},
        )
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds

    def test_consensus_module_untouched_on_nice_path(self):
        result = run_protocol(INBAC, 5, 2, [1] * 5)
        for pid in range(1, 6):
            assert not result.process(pid).iuc.proposed
            assert not result.process(pid).iuc.decided


class TestBranchHistory:
    def test_branch_history_is_recorded(self):
        result = run_protocol(INBAC, 5, 2, [1] * 5)
        assert all(result.process(pid).branch_history for pid in range(1, 6))

    def test_figure1_branches_all_reachable(self):
        """Across a small scenario battery every Figure 1 branch is exercised."""
        observed = set()
        scenarios = [
            ([1] * 5, None),
            ([1] * 5, FaultPlan.crashes_at({1: 0.0, 2: 0.0})),
            ([1] * 5, FaultPlan(delay_rules=[DelayRule(src=1, after_time=0.5, delay=40.0)])),
            ([1] * 5, FaultPlan(delay_rules=[DelayRule(dst=4, delay=35.0, after_time=0.5)])),
        ]
        for votes, plan in scenarios:
            result = run_protocol(INBAC, 5, 2, votes, fault_plan=plan)
            for pid in range(1, 6):
                observed.update(result.process(pid).branch_history)
        assert BRANCH_FAST_DECIDE in observed
        assert BRANCH_ASK_HELP in observed
        assert BRANCH_CONSENSUS_DECIDE in observed
