"""Tests for the paper's other optimal protocols (Appendices D and E).

Covers 1NBAC, the two avNBAC variants, 0NBAC, aNBAC, (n-1+f)NBAC, (2n-2)NBAC
and (2n-2+f)NBAC under aborting votes, crashes and network failures.
"""

from __future__ import annotations

import pytest

from conftest import assert_agreement, assert_all_decided, nbac_report, run_protocol
from repro.protocols import (
    ANBAC,
    AvNBACDelayOptimal,
    AvNBACMessageOptimal,
    NMinus1PlusFNBAC,
    OneNBAC,
    TwoNMinus2NBAC,
    TwoNMinus2PlusFNBAC,
    ZeroNBAC,
)
from repro.sim.faults import DelayRule, FaultPlan


class TestOneNBAC:
    def test_abort_on_no_vote(self):
        result = run_protocol(OneNBAC, 4, 2, [1, 0, 1, 1])
        assert_all_decided(result, value=0)
        assert nbac_report(result).validity.holds

    def test_crash_failure_solves_nbac(self):
        for crashed in (1, 3):
            plan = FaultPlan.crash(crashed, at=0.0)
            result = run_protocol(OneNBAC, 4, 2, [1] * 4, fault_plan=plan)
            report = nbac_report(result)
            assert report.validity.holds and report.agreement.holds and report.termination.holds

    def test_late_crash_still_commits(self):
        plan = FaultPlan.crash(2, at=1.5)
        result = run_protocol(OneNBAC, 4, 2, [1] * 4, fault_plan=plan)
        survivors = {pid: v for pid, v in result.decisions().items() if pid != 2}
        assert set(survivors.values()) == {1}

    def test_validity_and_termination_under_network_failure(self):
        # cell (AVT, VT): agreement may be lost under network failures, but
        # validity and termination must hold
        plan = FaultPlan.delay_messages(src=1, delay=30.0)
        result = run_protocol(OneNBAC, 4, 2, [1] * 4, fault_plan=plan)
        report = nbac_report(result)
        assert report.validity.holds
        assert report.termination.holds

    def test_decision_broadcast_only_after_full_collection(self):
        result = run_protocol(OneNBAC, 4, 1, [1] * 4)
        d_messages = [m for m in result.trace.counted_messages() if m.payload[0] == "D"]
        assert all(m.send_time == 1.0 for m in d_messages)


class TestAvNBACVariants:
    def test_delay_optimal_commits_in_one_delay(self):
        result = run_protocol(AvNBACDelayOptimal, 5, 2, [1] * 5)
        assert_all_decided(result, value=1)
        assert result.trace.last_decision_time() == 1.0

    def test_delay_optimal_aborts_on_no_vote(self):
        result = run_protocol(AvNBACDelayOptimal, 5, 2, [1, 1, 1, 1, 0])
        assert_all_decided(result, value=0)

    def test_delay_optimal_never_decides_after_a_crash(self):
        plan = FaultPlan.crash(2, at=0.0)
        result = run_protocol(AvNBACDelayOptimal, 5, 2, [1] * 5, fault_plan=plan, max_time=30)
        assert result.decisions() == {}
        report = nbac_report(result)
        assert report.agreement.holds and report.validity.holds

    def test_message_optimal_commits_via_pn(self):
        result = run_protocol(AvNBACMessageOptimal, 5, 2, [1] * 5)
        assert_all_decided(result, value=1)
        assert result.trace.message_count() == 8  # 2n - 2

    def test_message_optimal_aborts_on_no_vote(self):
        result = run_protocol(AvNBACMessageOptimal, 5, 2, [0, 1, 1, 1, 1])
        assert_all_decided(result, value=0)

    def test_message_optimal_blocks_when_pn_crashes_but_stays_safe(self):
        plan = FaultPlan.crash(5, at=0.0)
        result = run_protocol(AvNBACMessageOptimal, 5, 2, [1] * 5, fault_plan=plan, max_time=30)
        assert result.decisions() == {}
        assert nbac_report(result).agreement.holds


class TestZeroNBAC:
    def test_nice_execution_is_silent(self):
        result = run_protocol(ZeroNBAC, 5, 2, [1] * 5)
        assert result.trace.message_count() == 0
        assert_all_decided(result, value=1)

    def test_no_vote_triggers_messages_and_abort(self):
        result = run_protocol(ZeroNBAC, 5, 2, [1, 0, 1, 1, 1])
        assert result.trace.message_count() > 0
        assert_all_decided(result, value=0)
        assert nbac_report(result).validity.holds

    def test_multiple_no_votes_abort(self):
        result = run_protocol(ZeroNBAC, 4, 1, [0, 0, 1, 1])
        assert_all_decided(result, value=0)

    def test_agreement_and_termination_under_crash(self):
        plan = FaultPlan.crash(2, at=0.0)
        result = run_protocol(ZeroNBAC, 5, 2, [1] * 5, fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds

    def test_agreement_under_delayed_abort_notification(self):
        # cell (AT, AT): under a network failure validity may be violated
        # (implicit yes votes win) but agreement and termination must not be
        plan = FaultPlan.delay_messages(src=2, delay=25.0)
        result = run_protocol(ZeroNBAC, 4, 1, [1, 0, 1, 1], fault_plan=plan)
        report = nbac_report(result)
        assert report.agreement.holds
        assert report.termination.holds


class TestChainFamily:
    @pytest.mark.parametrize("cls", [NMinus1PlusFNBAC, ANBAC])
    def test_abort_on_no_vote(self, cls):
        result = run_protocol(cls, 5, 2, [1, 1, 0, 1, 1], max_time=400)
        decided = result.decisions()
        assert decided and set(decided.values()) == {0}
        assert nbac_report(result).agreement.holds

    def test_n1f_solves_nbac_under_crashes(self):
        for crashed, at in [(1, 0.0), (3, 0.0), (5, 2.0), (2, 5.0)]:
            plan = FaultPlan.crash(crashed, at)
            result = run_protocol(NMinus1PlusFNBAC, 5, 2, [1] * 5, fault_plan=plan, max_time=400)
            report = nbac_report(result)
            assert report.validity.holds, (crashed, at, report.violations())
            assert report.agreement.holds, (crashed, at)
            assert report.termination.holds, (crashed, at)

    def test_n1f_terminates_under_network_failure(self):
        # cell (AVT, T): only termination is promised under network failures
        plan = FaultPlan.delay_messages(src=1, delay=40.0)
        result = run_protocol(NMinus1PlusFNBAC, 5, 2, [1] * 5, fault_plan=plan, max_time=400)
        assert nbac_report(result).termination.holds

    def test_anbac_does_not_decide_when_acks_incomplete(self):
        # a crash during the abort path leaves collection incomplete: aNBAC
        # noops rather than risking disagreement (termination is not required)
        plan = FaultPlan.crash(4, at=0.0)
        result = run_protocol(ANBAC, 5, 2, [1, 0, 1, 1, 1], fault_plan=plan, max_time=400)
        report = nbac_report(result)
        assert report.agreement.holds
        assert report.validity.holds

    def test_2n2_commits_and_aborts_correctly(self):
        commit = run_protocol(TwoNMinus2NBAC, 5, 2, [1] * 5)
        assert_all_decided(commit, value=1)
        abort = run_protocol(TwoNMinus2NBAC, 5, 2, [1, 0, 1, 1, 1])
        assert_all_decided(abort, value=0)

    def test_2n2_solves_nbac_under_crashes(self):
        for crashed, at in [(5, 0.0), (5, 1.2), (1, 0.0), (3, 1.0)]:
            plan = FaultPlan.crash(crashed, at)
            result = run_protocol(TwoNMinus2NBAC, 5, 2, [1] * 5, fault_plan=plan, max_time=200)
            report = nbac_report(result)
            assert report.validity.holds and report.agreement.holds and report.termination.holds

    def test_2n2_validity_and_termination_under_network_failure(self):
        plan = FaultPlan.delay_messages(src=5, delay=30.0, after_time=0.5)
        result = run_protocol(TwoNMinus2NBAC, 5, 2, [1] * 5, fault_plan=plan, max_time=200)
        report = nbac_report(result)
        assert report.validity.holds and report.termination.holds

    def test_2n2f_commits_and_aborts_correctly(self):
        commit = run_protocol(TwoNMinus2PlusFNBAC, 5, 2, [1] * 5, max_time=400)
        assert_all_decided(commit, value=1)
        abort = run_protocol(TwoNMinus2PlusFNBAC, 5, 2, [1, 1, 1, 1, 0], max_time=400)
        assert_all_decided(abort, value=0)

    @pytest.mark.parametrize("crashed,at", [(1, 0.0), (2, 0.0), (5, 0.0), (3, 3.0), (5, 6.0)])
    def test_2n2f_indulgent_under_crashes(self, crashed, at):
        plan = FaultPlan.crash(crashed, at)
        result = run_protocol(TwoNMinus2PlusFNBAC, 5, 2, [1] * 5, fault_plan=plan, max_time=400)
        report = nbac_report(result)
        assert report.validity.holds and report.agreement.holds and report.termination.holds

    def test_2n2f_indulgent_under_network_failure(self):
        plan = FaultPlan(delay_rules=[DelayRule(src=5, after_time=1.0, delay=50.0)])
        result = run_protocol(TwoNMinus2PlusFNBAC, 5, 2, [1] * 5, fault_plan=plan, max_time=400)
        report = nbac_report(result)
        assert report.agreement.holds and report.termination.holds

    def test_help_path_of_2n2f(self):
        # crash Pf while it relays the [B] chain: some process in the middle of
        # the ring asks {P1..Pf, Pn} for help and still terminates
        plan = FaultPlan.crash(2, at=5.0)
        result = run_protocol(TwoNMinus2PlusFNBAC, 5, 2, [1] * 5, fault_plan=plan, max_time=400)
        report = nbac_report(result)
        assert report.termination.holds and report.agreement.holds
