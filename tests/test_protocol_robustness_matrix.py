"""Robustness matrix: every protocol satisfies its cell across failure classes.

For each registered protocol that claims a Table 1 cell, run a battery of
crash-failure and network-failure executions and check that the properties the
cell requires for that execution class all hold (experiment E9 in miniature).
"""

from __future__ import annotations

import pytest

from repro.core.checker import evaluate_problem
from repro.protocols.registry import all_protocols, get_protocol
from repro.sim.faults import DelayRule, FaultPlan
from repro.sim.runner import Simulation

N, F = 5, 2

CRASH_PLANS = [
    FaultPlan.failure_free(),
    FaultPlan.crash(1, at=0.0),
    FaultPlan.crash(3, at=0.0),
    FaultPlan.crash(5, at=1.0),
    FaultPlan.crashes_at({1: 0.0, 4: 2.0}),
]

NETWORK_PLANS = [
    FaultPlan.delay_messages(src=1, delay=35.0),
    FaultPlan.delay_messages(dst=5, delay=35.0, after_time=0.5),
    FaultPlan.crash(2, at=0.0).merged_with(
        FaultPlan.delay_messages(src=3, delay=30.0, after_time=1.0)
    ),
]

VOTE_PATTERNS = [[1] * N, [1, 1, 0, 1, 1]]


def _run(protocol_name, votes, plan):
    info = get_protocol(protocol_name)
    sim = Simulation(
        n=N, f=F, process_class=info.cls, fault_plan=plan, max_time=400, seed=1
    )
    return sim.run(votes)


@pytest.mark.parametrize(
    "protocol_name",
    [name for name, info in sorted(all_protocols().items()) if info.cell is not None],
)
def test_protocol_satisfies_its_cell_under_crash_failures(protocol_name):
    info = get_protocol(protocol_name)
    for plan in CRASH_PLANS:
        for votes in VOTE_PATTERNS:
            result = _run(protocol_name, votes, plan)
            evaluation = evaluate_problem(result.trace, info.cell)
            assert evaluation.satisfied, (
                f"{protocol_name} under {plan.description} with votes {votes}: "
                f"{evaluation.failures}"
            )


@pytest.mark.parametrize(
    "protocol_name",
    [name for name, info in sorted(all_protocols().items()) if info.cell is not None],
)
def test_protocol_satisfies_its_cell_under_network_failures(protocol_name):
    info = get_protocol(protocol_name)
    for plan in NETWORK_PLANS:
        for votes in VOTE_PATTERNS:
            result = _run(protocol_name, votes, plan)
            evaluation = evaluate_problem(result.trace, info.cell)
            assert evaluation.satisfied, (
                f"{protocol_name} under {plan.description} with votes {votes}: "
                f"{evaluation.failures}"
            )


def test_indulgent_protocols_solve_nbac_under_every_plan():
    """Definition 3: every network-failure execution of an indulgent protocol
    solves NBAC outright."""
    indulgent = [n for n, info in all_protocols().items() if info.solves_indulgent]
    assert set(indulgent) >= {"INBAC", "(2n-2+f)NBAC", "PaxosCommit", "FasterPaxosCommit"}
    for name in indulgent:
        for plan in CRASH_PLANS + NETWORK_PLANS:
            result = _run(name, [1] * N, plan)
            from repro.core.checker import check_nbac

            report = check_nbac(result.trace)
            assert report.solves_nbac(), (name, plan.description, report.violations())


def test_2pc_is_the_only_blocking_protocol_in_the_registry():
    blocking = [name for name, info in all_protocols().items() if info.blocking]
    assert blocking == ["2PC"]
