"""Nice-execution complexity of every protocol against its expected formula.

These tests are the executable core of the reproduction: for every registered
protocol and a grid of ``(n, f)`` values they assert that the measured number
of message delays and messages in a nice execution equals the closed-form
value (Tables 2, 3 and 5 of the paper), that every process commits, and that
the underlying consensus module is never used on the nice path.
"""

from __future__ import annotations

import pytest

from repro.core.metrics import nice_execution_complexity
from repro.core.properties import is_nice_execution
from repro.core.table1 import cell_bound
from repro.protocols.registry import all_protocols, get_protocol, paper_protocols
from repro.sim.runner import run_nice_execution

GRID = [(3, 1), (4, 1), (5, 2), (6, 3), (8, 3), (7, 6)]


def _cases():
    for name in all_protocols():
        for n, f in GRID:
            yield name, n, f


@pytest.mark.parametrize("name,n,f", list(_cases()))
def test_nice_execution_matches_expected_complexity(name, n, f):
    info = get_protocol(name)
    result = run_nice_execution(info.cls, n=n, f=f)
    trace = result.trace
    stats = nice_execution_complexity(trace)

    assert is_nice_execution(trace), "the run must be a nice execution"
    # every process decides commit
    assert len(trace.decisions) == n
    assert set(result.decisions().values()) == {1}
    # complexity matches the closed form
    assert stats.message_delays == info.expected_delays(n, f), (
        f"{name}: measured {stats.message_delays} delays, "
        f"expected {info.expected_delays(n, f)}"
    )
    assert stats.messages == info.expected_messages(n, f), (
        f"{name}: measured {stats.messages} messages, "
        f"expected {info.expected_messages(n, f)}"
    )
    # the consensus module must never be involved in nice executions
    assert stats.consensus_messages == 0


@pytest.mark.parametrize("name", sorted(paper_protocols()))
def test_paper_protocols_meet_their_cell_bounds(name):
    """Delay-/message-optimal protocols meet the Table 1 bound of their cell."""
    info = get_protocol(name)
    n, f = 6, 2
    result = run_nice_execution(info.cls, n=n, f=f)
    stats = nice_execution_complexity(result.trace)
    bound = cell_bound(info.cell)
    assert stats.message_delays >= bound.delays
    assert stats.messages >= bound.messages_for(n, f)
    if info.delay_optimal:
        assert stats.message_delays == bound.delays
    if info.message_optimal:
        assert stats.messages == bound.messages_for(n, f)


@pytest.mark.parametrize("n,f", [(4, 1), (6, 2)])
def test_inbac_two_delay_message_optimality(n, f):
    """Theorem 5/6: INBAC uses exactly 2fn messages, optimal given 2 delays."""
    result = run_nice_execution(get_protocol("INBAC").cls, n=n, f=f)
    stats = nice_execution_complexity(result.trace)
    assert stats.message_delays == 2
    assert stats.messages == 2 * f * n


def test_inbac_vs_2pc_comparison_from_the_introduction():
    """Section 1.3: with f = 1, INBAC uses 2n messages vs 2PC's 2n - 2,
    with the same number of message delays."""
    n, f = 7, 1
    inbac = nice_execution_complexity(run_nice_execution(get_protocol("INBAC").cls, n, f).trace)
    two_pc = nice_execution_complexity(run_nice_execution(get_protocol("2PC").cls, n, f).trace)
    assert inbac.message_delays == two_pc.message_delays == 2
    assert inbac.messages == 2 * n
    assert two_pc.messages == 2 * n - 2
    assert inbac.messages - two_pc.messages == 2


def test_paxoscommit_vs_inbac_tradeoff():
    """Section 6.2: for f >= 2, n >= 3, PaxosCommit wins on messages while
    INBAC wins on message delays."""
    n, f = 8, 3
    inbac = nice_execution_complexity(run_nice_execution(get_protocol("INBAC").cls, n, f).trace)
    paxos = nice_execution_complexity(
        run_nice_execution(get_protocol("PaxosCommit").cls, n, f).trace
    )
    assert paxos.messages < inbac.messages
    assert inbac.message_delays < paxos.message_delays


def test_one_delay_protocols_pay_n_squared_messages():
    """Section 3.2: a 1-delay protocol with validity under crashes needs at
    least n(n-1) messages — 1NBAC and delay-optimal avNBAC sit exactly there."""
    n, f = 6, 2
    for name in ("1NBAC", "avNBAC-delay"):
        stats = nice_execution_complexity(run_nice_execution(get_protocol(name).cls, n, f).trace)
        assert stats.message_delays == 1
        assert stats.messages == n * (n - 1)


def test_zero_nbac_sends_nothing_at_all():
    result = run_nice_execution(get_protocol("0NBAC").cls, n=6, f=2)
    assert result.trace.message_count() == 0
    assert result.trace.messages == [] or all(not m.counted for m in result.trace.messages)


def test_registry_consistency():
    registry = all_protocols()
    assert len(registry) == 13
    for name, info in registry.items():
        assert info.name == name
        assert info.cls.protocol_name  # every protocol declares a display name
    with pytest.raises(Exception):
        get_protocol("definitely-not-a-protocol")
