"""Protocols under realistic (non-degenerate) delay distributions.

The complexity experiments use the degenerate "every delay equals U" model the
paper measures with; these tests check that the protocols remain correct when
message delays vary within the synchronous bound — uniform and heavy-tailed
(Bakr & Keidar-style) distributions — and that runs are deterministic given a
seed.
"""

from __future__ import annotations

import pytest

from conftest import nbac_report, run_protocol
from repro.protocols import (
    INBAC,
    NMinus1PlusFNBAC,
    OneNBAC,
    PaxosCommit,
    TwoNMinus2NBAC,
    TwoPhaseCommit,
    ZeroNBAC,
)
from repro.sim.faults import FaultPlan
from repro.sim.network import LognormalDelay, UniformDelay

PROTOCOLS = [
    TwoPhaseCommit,
    INBAC,
    OneNBAC,
    ZeroNBAC,
    NMinus1PlusFNBAC,
    TwoNMinus2NBAC,
    PaxosCommit,
]


def _models(seed):
    return [
        UniformDelay(0.2, 1.0, seed=seed),
        LognormalDelay(median=0.3, sigma=0.8, u=1.0, seed=seed),
    ]


@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda c: c.protocol_name)
def test_all_yes_commits_under_varying_delays(protocol):
    for seed in (1, 2):
        for model in _models(seed):
            result = run_protocol(protocol, 5, 2, [1] * 5, delay_model=model, max_time=400)
            report = nbac_report(result)
            assert set(result.decisions().values()) == {1}
            assert report.validity.holds and report.agreement.holds and report.termination.holds


@pytest.mark.parametrize("protocol", PROTOCOLS, ids=lambda c: c.protocol_name)
def test_one_no_vote_aborts_under_varying_delays(protocol):
    for model in _models(seed=3):
        result = run_protocol(protocol, 5, 2, [1, 1, 0, 1, 1], delay_model=model, max_time=400)
        report = nbac_report(result)
        assert set(result.decisions().values()) == {0}
        assert report.validity.holds and report.agreement.holds


@pytest.mark.parametrize("protocol", [INBAC, PaxosCommit, OneNBAC], ids=lambda c: c.protocol_name)
def test_crash_under_varying_delays_preserves_the_cell(protocol):
    for model in _models(seed=5):
        result = run_protocol(
            protocol, 5, 2, [1] * 5, delay_model=model,
            fault_plan=FaultPlan.crash(2, at=0.0), max_time=400,
        )
        report = nbac_report(result)
        assert report.agreement.holds
        assert report.termination.holds
        assert report.validity.holds


def test_runs_are_deterministic_given_the_seed():
    a = run_protocol(INBAC, 5, 2, [1] * 5, delay_model=UniformDelay(0.2, 1.0, seed=9))
    b = run_protocol(INBAC, 5, 2, [1] * 5, delay_model=UniformDelay(0.2, 1.0, seed=9))
    assert a.trace.message_count() == b.trace.message_count()
    assert [m.recv_time for m in a.trace.messages] == [m.recv_time for m in b.trace.messages]
    assert a.decisions() == b.decisions()


def test_varying_delays_do_not_change_best_case_message_counts():
    """Message complexity is delay-independent as long as delays stay <= U."""
    fixed = run_protocol(INBAC, 6, 2, [1] * 6)
    varied = run_protocol(INBAC, 6, 2, [1] * 6, delay_model=UniformDelay(0.3, 1.0, seed=4))
    assert fixed.trace.message_count() == varied.trace.message_count() == 24
