"""Crash-recovery and graceful degradation: WAL rejoin, retry, gray failures.

The tentpole contract: a partition crashed mid-run can rejoin by replaying
its write-ahead log, resolve its in-doubt transactions through termination
queries, and resume serving — and none of it perturbs a single byte of the
recovery-free fingerprints.
"""

from __future__ import annotations

import random

import pytest

from repro.db import ClusterConfig, LockMode, RetryPolicy, run_cluster
from repro.db.partition import PartitionServer
from repro.db.transaction import Operation, Transaction
from repro.db.wal import ABORT as WAL_ABORT
from repro.db.wal import COMMIT as WAL_COMMIT
from repro.db.wal import PREPARE as WAL_PREPARE
from repro.db.wal import WriteAheadLog
from repro.errors import ConfigurationError
from repro.exp import GridSpec, run_sweep
from repro.explore.driver import explore
from repro.explore.schedule import ScheduleTrace
from repro.explore.strategies import make_strategy
from repro.protocols.base import ABORT, COMMIT
from repro.sim.faults import FaultPlan
from repro.sim.network import FlakyLinkDelay
from repro.workloads.transactions import bank_transfer_workload


# --------------------------------------------------------------------------- #
# fault-plan surface
# --------------------------------------------------------------------------- #
class TestFaultPlanRecovery:
    def test_crash_recover_constructor(self):
        plan = FaultPlan.crash_recover(2, at=5.0, rejoin_at=12.0)
        assert plan.crashes == {2: 5.0}
        assert plan.recoveries == {2: 12.0}
        plan.validate(n=3, f=1)

    def test_rejoin_must_follow_the_crash(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.crash_recover(2, at=5.0, rejoin_at=5.0)
        with pytest.raises(ConfigurationError):
            FaultPlan.crash_recover(2, at=5.0, rejoin_at=3.0)

    def test_validate_rejects_recovery_without_a_crash(self):
        plan = FaultPlan(recoveries={2: 9.0})
        with pytest.raises(ConfigurationError, match="no matching crash"):
            plan.validate(n=3, f=1)

    def test_validate_rejects_rejoin_before_the_crash(self):
        plan = FaultPlan(crashes={2: 9.0}, recoveries={2: 4.0})
        with pytest.raises(ConfigurationError, match="rejoins"):
            plan.validate(n=3, f=1)

    def test_merged_with_carries_recoveries(self):
        merged = FaultPlan.crash_recover(1, at=2.0, rejoin_at=8.0).merged_with(
            FaultPlan.crash(2, at=3.0)
        )
        assert merged.crashes == {1: 2.0, 2: 3.0}
        assert merged.recoveries == {1: 8.0}


# --------------------------------------------------------------------------- #
# sim-side rejoin: the acceptance scenario
# --------------------------------------------------------------------------- #
def spaced_transfers():
    """Three multi-partition transactions with a quiet gap between them."""
    return [
        Transaction.of(
            "t-early",
            [Operation.write(1, "a", 10), Operation.write(2, "b", 20)],
            submit_time=0.0,
        ),
        Transaction.of(
            "t-after-rejoin",
            [Operation.write(2, "b", 21), Operation.write(3, "c", 30)],
            submit_time=45.0,
        ),
        Transaction.of(
            "t-late",
            [Operation.write(1, "a", 11), Operation.write(2, "d", 40)],
            submit_time=70.0,
        ),
    ]


class TestSimRejoin:
    def base_config(self, **overrides):
        params = dict(
            num_partitions=3,
            commit_protocol="INBAC",
            commit_f=1,
            seed=5,
            max_time=400.0,
        )
        params.update(overrides)
        return ClusterConfig(**params)

    def test_rejoined_run_commits_the_fault_free_transaction_set(self):
        # P2 crashes in a quiet window and rejoins before the next submission
        # that needs it: every transaction of the fault-free run still commits,
        # and the invariant battery passes on the recovered store
        free = run_cluster(self.base_config(), spaced_transfers())
        rejoined = run_cluster(
            self.base_config(
                fault_plan=FaultPlan.crash_recover(2, at=15.0, rejoin_at=30.0)
            ),
            spaced_transfers(),
        )
        committed = lambda report: {
            o.txn_id for o in report.outcomes if o.decision == COMMIT
        }
        assert committed(free) == committed(rejoined) == {
            "t-early", "t-after-rejoin", "t-late"
        }
        assert rejoined.incomplete == 0
        assert rejoined.invariants is not None and rejoined.invariants.holds
        assert rejoined.store_snapshots == free.store_snapshots
        [event] = rejoined.recovery_events
        assert event.pid == 2
        assert event.crashed_at == 15.0
        assert event.rejoined_at == 30.0
        assert event.downtime == 15.0
        assert event.replayed_transactions == 1  # t-early was durable
        assert event.in_doubt_at_rejoin == ()
        # the crash still happened: classification does not regress
        assert rejoined.execution_class == "crash-failure"

    def test_client_coordinator_is_not_recoverable(self):
        config = self.base_config(
            # pid 4 is the client in a 3-partition cluster
            fault_plan=FaultPlan.crash_recover(4, at=5.0, rejoin_at=10.0),
            commit_f=2,
        )
        with pytest.raises(ConfigurationError, match="client coordinator"):
            run_cluster(config, spaced_transfers())

    def test_retry_policy_resubmits_through_the_outage(self):
        workload = bank_transfer_workload(
            num_transfers=8, num_partitions=3, seed=5
        )
        config = self.base_config(
            fault_plan=FaultPlan.crash_recover(2, at=10.0, rejoin_at=25.0),
            retry_policy=RetryPolicy(max_attempts=4, timeout_units=15.0),
        )
        report = run_cluster(config, workload.transactions)
        # the transaction submitted into the outage was retried...
        assert report.retry_counts
        assert all(count >= 1 for count in report.retry_counts.values())
        # ...and every transaction reached a decision (commit or clean abort)
        assert report.incomplete == 0
        assert report.invariants is not None and report.invariants.holds

    def test_retry_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_units=0.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(jitter_units=-1.0)

    def test_backoff_is_bounded_and_grows(self):
        policy = RetryPolicy(
            backoff_units=2.0, backoff_factor=2.0, max_backoff_units=6.0,
            jitter_units=0.0,
        )
        rng = random.Random(0)
        assert policy.backoff(1, rng) == 2.0
        assert policy.backoff(2, rng) == 4.0
        assert policy.backoff(3, rng) == 6.0  # capped
        assert policy.backoff(9, rng) == 6.0


# --------------------------------------------------------------------------- #
# WAL rejoin edge cases at the runtime boundary
# --------------------------------------------------------------------------- #
class _StubEnv:
    """Minimal ProcessEnv recording sends; enough to drive recovery paths."""

    def __init__(self, seed: int = 0):
        self.sent = []
        self.random = random.Random(seed)

    def send(self, dst, payload, module="main"):
        self.sent.append((dst, payload))

    def set_timer(self, at_units, name="timer"):
        pass

    def cancel_timer(self, name="timer"):
        pass

    def decide(self, value):
        pass

    def now(self):
        return 0.0


def make_server(env=None):
    return PartitionServer(2, 3, 1, env if env is not None else _StubEnv())


def wal_with_history():
    """Committed t1, aborted t2, in-doubt t3 (prepared, no outcome)."""
    wal = WriteAheadLog()
    wal.append(WAL_PREPARE, "t1", writes={"a": 1}, participants=(1, 2))
    wal.append(WAL_COMMIT, "t1", writes={"a": 1})
    wal.append(WAL_PREPARE, "t2", writes={"b": 2}, participants=(2, 3))
    wal.append(WAL_ABORT, "t2")
    wal.append(WAL_PREPARE, "t3", writes={"c": 3}, participants=(1, 2, 3))
    return wal


class TestWalRejoinEdgeCases:
    def test_recover_twice_is_idempotent(self):
        wal = wal_with_history()
        first = make_server()
        replayed_first = first.recover_from_wal(wal, coordinator=9)
        snapshot = first.store.snapshot()
        stats = dict(first.statistics)
        second = make_server()
        replayed_second = second.recover_from_wal(wal, coordinator=9)
        assert replayed_first == replayed_second == 1
        assert second.store.snapshot() == snapshot == {"a": 1}
        assert dict(second.statistics) == stats
        # and replaying again on the *same* server reaches the same state
        assert first.recover_from_wal(wal, coordinator=9) == 1
        assert first.store.snapshot() == snapshot

    def test_recovery_reinstalls_locks_for_in_doubt_writes(self):
        server = make_server()
        server.recover_from_wal(wal_with_history(), coordinator=9)
        # t3 is in doubt: its write set must be locked against newcomers
        assert not server.locks.try_acquire("intruder", "c", LockMode.EXCLUSIVE)
        # resolved keys are free
        assert server.locks.try_acquire("intruder", "a", LockMode.EXCLUSIVE)

    def test_rejoin_over_a_torn_tail(self):
        wal = wal_with_history()
        wal.append(WAL_COMMIT, "t3", writes={"c": 3})
        wal.tear_final_record()  # crash mid-append of t3's commit record
        server = make_server()
        server.recover_from_wal(wal, coordinator=9)
        # the torn commit is invisible: t3 is back in doubt, its write absent
        assert "c" not in server.store.snapshot()
        assert "t3" in server.wal.in_doubt()
        assert not server.locks.try_acquire("intruder", "c", LockMode.EXCLUSIVE)

    def test_in_doubt_resolution_round_trip(self):
        env = _StubEnv()
        server = PartitionServer(2, 3, 1, env)
        server.recover_from_wal(wal_with_history(), coordinator=9)
        server.on_recover()
        # termination queries go to the coordinator and t3's peer participants
        queries = [(dst, p) for dst, p in env.sent if p[0] == "OUTCOME?"]
        assert (9, ("OUTCOME?", "t3")) in queries
        assert (1, ("OUTCOME?", "t3")) in queries
        assert (3, ("OUTCOME?", "t3")) in queries
        assert all(dst != 2 for dst, _ in queries)  # never queries itself
        # a COMMIT answer applies the prepared writes and releases the locks
        server.on_deliver(9, ("OUTCOME", "t3", COMMIT))
        assert server.store.snapshot()["c"] == 3
        assert server.wal.outcome_of("t3") == WAL_COMMIT
        assert server.locks.try_acquire("intruder", "c", LockMode.EXCLUSIVE)
        # the resolution is acked to the coordinator
        assert (9, ("DONE", "t3", COMMIT, 0.0)) in env.sent
        # duplicate answers are idempotent (no double apply, no new record)
        records_before = len(server.wal)
        server.on_deliver(1, ("OUTCOME", "t3", COMMIT))
        server.on_deliver(3, ("OUTCOME", "t3", ABORT))
        assert len(server.wal) == records_before
        assert server.store.snapshot()["c"] == 3

    def test_abort_answer_discards_the_prepared_writes(self):
        env = _StubEnv()
        server = PartitionServer(2, 3, 1, env)
        server.recover_from_wal(wal_with_history(), coordinator=9)
        server.on_deliver(9, ("OUTCOME", "t3", ABORT))
        assert "c" not in server.store.snapshot()
        assert server.wal.outcome_of("t3") == WAL_ABORT
        assert server.locks.try_acquire("intruder", "c", LockMode.EXCLUSIVE)

    def test_outcome_query_answered_only_when_known(self):
        env = _StubEnv()
        server = PartitionServer(2, 3, 1, env)
        server.recover_from_wal(wal_with_history(), coordinator=9)
        server.on_deliver(1, ("OUTCOME?", "t1"))  # committed here
        server.on_deliver(1, ("OUTCOME?", "t3"))  # in doubt here too
        answers = [(dst, p) for dst, p in env.sent if p[0] == "OUTCOME"]
        assert answers == [(1, ("OUTCOME", "t1", COMMIT))]


# --------------------------------------------------------------------------- #
# gray failures: the flaky-link delay model
# --------------------------------------------------------------------------- #
class TestFlakyLinkDelay:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlakyLinkDelay(u=0.0)
        with pytest.raises(ConfigurationError):
            FlakyLinkDelay(jitter=1.0)  # jitter must stay below u
        with pytest.raises(ConfigurationError):
            FlakyLinkDelay(slow_pairs={(1, 2): 0.0})
        with pytest.raises(ConfigurationError):
            FlakyLinkDelay(outages=((1, 2, 5.0, 3.0),))

    def test_asymmetric_slow_pairs(self):
        model = FlakyLinkDelay(u=1.0, slow_pairs={(1, 2): 4.0})
        assert model.delay(1, 2, None, 0.0) == 4.0  # slow direction
        assert model.delay(2, 1, None, 0.0) == 1.0  # nominal direction
        assert model.bound() == 1.0

    def test_outage_window_holds_messages_until_heal(self):
        model = FlakyLinkDelay(u=1.0, outages=((1, 2, 4.0, 8.0),))
        # sent mid-window: arrives one nominal delay after the heal
        assert model.delay(1, 2, None, 5.0) == (8.0 - 5.0) + 1.0
        # outside the window, and on other links, delays are nominal
        assert model.delay(1, 2, None, 8.0) == 1.0
        assert model.delay(2, 1, None, 5.0) == 1.0

    def test_seeded_jitter_is_reproducible(self):
        a = [FlakyLinkDelay(jitter=0.3, seed=7).delay(1, 2, None, t) for t in range(6)]
        b = [FlakyLinkDelay(jitter=0.3, seed=7).delay(1, 2, None, t) for t in range(6)]
        assert a == b
        assert all(0.7 <= d <= 1.0 for d in a)


# --------------------------------------------------------------------------- #
# fingerprint determinism with the recovery axes enabled
# --------------------------------------------------------------------------- #
def recovery_grid(**overrides):
    params = dict(
        protocols=["INBAC", "2PC"],
        systems=[(3, 1)],
        delays=[None, "flaky-link"],
        faults=[None, "rejoin"],
        workloads=[
            ("bank", bank_transfer_workload(num_transfers=4, num_partitions=3, seed=13))
        ],
        seeds=[0, 1],
        max_time=2000.0,
    )
    params.update(overrides)
    return GridSpec(**params)


class TestRecoveryDeterminism:
    def test_registry_axes_resolve(self):
        grid = recovery_grid()
        labels = {t.fault.label for t in grid.trials()}
        assert labels == {"failure-free", "rejoin"}
        assert {t.delay.label for t in grid.trials()} == {"U=1", "flaky-link"}

    def test_aggregate_fingerprints_across_levels_and_workers(self):
        serial_full = run_sweep(
            recovery_grid(), workers=1, mode="aggregate", trace_level="full"
        )
        serial_counters = run_sweep(
            recovery_grid(), workers=1, mode="aggregate", trace_level="counters"
        )
        parallel = run_sweep(recovery_grid(), workers=2, mode="aggregate")
        in_memory = run_sweep(recovery_grid(), workers=1)
        assert (
            serial_full.aggregate_fingerprint()
            == serial_counters.aggregate_fingerprint()
            == parallel.aggregate_fingerprint()
            == in_memory.aggregate_fingerprint()
        )

    def test_retry_and_recovery_runs_are_bit_stable(self):
        def one_run():
            config = ClusterConfig(
                num_partitions=3,
                commit_protocol="INBAC",
                commit_f=1,
                seed=5,
                max_time=400.0,
                fault_plan=FaultPlan.crash_recover(2, at=10.0, rejoin_at=25.0),
                retry_policy=RetryPolicy(max_attempts=4, timeout_units=15.0),
            )
            workload = bank_transfer_workload(
                num_transfers=8, num_partitions=3, seed=5
            )
            return run_cluster(config, workload.transactions)

        a, b = one_run(), one_run()
        assert a.summary_row() == b.summary_row()
        assert a.retry_counts == b.retry_counts
        assert a.recovery_events == b.recovery_events
        assert [(o.txn_id, o.decision, o.ack_time) for o in a.outcomes] == [
            (o.txn_id, o.decision, o.ack_time) for o in b.outcomes
        ]


# --------------------------------------------------------------------------- #
# schedule exploration over the recovery surface
# --------------------------------------------------------------------------- #
class TestExploreRecovery:
    def test_recover_decisions_normalise_and_describe(self):
        trace = ScheduleTrace(
            strategy="crash-point", decisions=[(3, "crash", 2), (9, "recover", 2)]
        )
        assert trace.decisions == [(3, "crash", 2), (9, "recover", 2)]
        assert "rejoin P2 from its WAL" in trace.describe()[1]
        restored = ScheduleTrace.from_json(trace.to_json())
        assert restored.decisions == trace.decisions

    def test_crash_point_recover_after_validation(self):
        with pytest.raises(ConfigurationError):
            make_strategy("crash-point", pid=1, point=0, recover_after=0)

    def test_controller_crash_and_rejoin_on_a_cluster_run(self):
        workload = bank_transfer_workload(
            num_transfers=6, num_partitions=3, seed=11
        )
        config = ClusterConfig(
            num_partitions=3,
            commit_protocol="INBAC",
            commit_f=1,
            seed=11,
            max_time=4000.0,
            controller=make_strategy(
                "crash-point", pid=2, point=2, recover_after=3
            ),
        )
        report = run_cluster(config, workload.transactions)
        kinds = [kind for _, kind, _ in report.schedule_decisions]
        assert kinds.count("crash") == 1
        assert kinds.count("recover") == 1
        [event] = report.recovery_events
        assert event.pid == 2
        assert event.rejoined_at > event.crashed_at
        assert report.invariants is not None and report.invariants.holds

    def test_cluster_rejoin_preset_explores_partitions_only(self):
        report = explore(
            "INBAC",
            3,
            1,
            budget=6,
            preset="cluster-rejoin",
            workload="uniform",
            max_time=4000.0,
        )
        assert report.errors == []
        assert report.schedules_run == 6
        assert report.strategy == "cluster-rejoin"
        assert report.meta["preset"] == "cluster-rejoin"
        # the safety invariants hold under every crash-and-rejoin schedule
        assert not report.found
