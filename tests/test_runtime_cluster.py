"""The asyncio runtime serving real commits and the transactional cluster.

Everything here runs on the wall clock (marker: ``runtime``); the conftest
SIGALRM guard turns a deadlock into a failure instead of a hang.  The
protocol, partition and coordinator classes under test are byte-for-byte the
ones the simulator runs — that is the point.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.db.cluster import BACKENDS, ClusterConfig, run_cluster
from repro.db.coordinator import RetryPolicy
from repro.db.transaction import Operation, Transaction
from repro.errors import ConfigurationError
from repro.protocols.base import COMMIT
from repro.protocols.registry import get_protocol
from repro.runtime import (
    AsyncClusterService,
    LinkPolicy,
    LocalTransport,
    run_commit,
)
from repro.sim.faults import FaultPlan
from repro.sim.network import FixedDelay
from repro.workloads.transactions import bank_transfer_workload, uniform_workload

pytestmark = pytest.mark.runtime


# --------------------------------------------------------------------------- #
# bare commit instances
# --------------------------------------------------------------------------- #
class TestRunCommit:
    def test_crash_of_one_participant_inbac_still_terminates(self):
        # INBAC is non-blocking for f=1: the surviving three must decide
        result = run_commit(
            "INBAC", 4, 1, [1, 1, 1, 1], crash_at={3: 0.5}, timeout_units=120.0
        )
        assert not result.timed_out
        assert result.errors == []
        assert 3 in result.crashes
        survivors = {pid: d for pid, d in result.decisions.items() if pid != 3}
        assert len(survivors) == 3
        assert len(set(survivors.values())) == 1

    def test_message_counts_at_least_the_nice_execution_bound(self):
        # fault-free runs are message-driven: at least the registry's
        # best-case count flows (exactly, unless a loaded host lets a
        # failure-detection timer fire)
        for name in ("2PC", "INBAC"):
            info = get_protocol(name)
            result = run_commit(name, 4, 1, [1, 1, 1, 1])
            assert not result.timed_out
            assert result.messages_total >= info.expected_messages(4, 1)

    def test_vote_validation_and_decide_once_surface_as_errors(self):
        with pytest.raises(ConfigurationError):
            run_commit("2PC", 4, 1, [1, 1, 1])  # wrong vote count

    def test_link_policy_validation(self):
        with pytest.raises(ConfigurationError):
            LinkPolicy(delay_units=-1.0)
        with pytest.raises(ConfigurationError):
            LinkPolicy(drop_probability=1.5)
        with pytest.raises(ConfigurationError):
            LocalTransport(unit=0.0)


# --------------------------------------------------------------------------- #
# batch cluster runs (run_cluster backend dispatch)
# --------------------------------------------------------------------------- #
class TestBatchCluster:
    def test_backends_registry(self):
        assert BACKENDS == ("sim", "asyncio")
        with pytest.raises(ConfigurationError):
            run_cluster(ClusterConfig(), [object()], backend="threads")

    def test_asyncio_backend_matches_sim_outcomes_fault_free(self):
        workload = uniform_workload(num_transactions=5, num_partitions=3, seed=7)
        config = ClusterConfig(
            num_partitions=3, commit_protocol="2PC", seed=7, max_time=400.0
        )
        sim_report = run_cluster(config, workload.transactions)
        rt_report = run_cluster(config, workload.transactions, backend="asyncio")
        assert sim_report.backend == "sim"
        assert rt_report.backend == "asyncio"
        assert rt_report.committed == sim_report.committed
        assert rt_report.aborted == sim_report.aborted
        assert rt_report.incomplete == 0
        assert rt_report.execution_class == "failure-free"
        assert rt_report.invariants is not None and rt_report.invariants.holds
        # both backends applied the same committed writes
        assert rt_report.store_snapshots == sim_report.store_snapshots

    def test_simulator_only_features_are_rejected(self):
        workload = uniform_workload(
            num_transactions=2, num_partitions=2, participants_per_txn=2, seed=1
        )
        with pytest.raises(ConfigurationError, match="simulator-only"):
            run_cluster(
                ClusterConfig(num_partitions=2, delay_model=FixedDelay(1.0)),
                workload.transactions,
                backend="asyncio",
            )
        with pytest.raises(ConfigurationError, match="simulator-only"):
            run_cluster(
                ClusterConfig(num_partitions=2, controller=object()),
                workload.transactions,
                backend="asyncio",
            )

    def test_fault_plan_crashes_carry_over(self):
        workload = uniform_workload(num_transactions=4, num_partitions=3, seed=3)
        config = ClusterConfig(
            num_partitions=3,
            commit_protocol="INBAC",
            seed=3,
            max_time=200.0,
            fault_plan=FaultPlan.crash(2, at=0.0),
        )
        report = run_cluster(
            config, workload.transactions, backend="asyncio"
        )
        assert 2 in report.crashes
        assert report.execution_class == "crash-failure"
        assert report.invariants is not None and report.invariants.holds


# --------------------------------------------------------------------------- #
# the live service: concurrent clients, mid-run crashes, fault injection
# --------------------------------------------------------------------------- #
class TestLiveService:
    def test_concurrent_clients_commit(self):
        workload = bank_transfer_workload(
            num_transfers=6, num_partitions=3, seed=11
        )

        async def drive():
            service = AsyncClusterService(
                ClusterConfig(
                    num_partitions=3, commit_protocol="INBAC", seed=11,
                    max_time=300.0,
                )
            )
            await service.start()
            outcomes = await asyncio.gather(
                *(
                    service.submit(txn, timeout_units=120.0)
                    for txn in workload.transactions
                )
            )
            report = await service.shutdown()
            return outcomes, report

        outcomes, report = asyncio.run(drive())
        # concurrent transfers contend on account locks (no-wait locking):
        # every transaction completes — committed or cleanly aborted — and
        # the progress guarantee means at least one acquirer wins
        assert all(o is not None for o in outcomes)
        assert report.incomplete == 0
        assert report.committed + report.aborted == 6
        assert report.committed >= 1
        assert report.invariants is not None and report.invariants.holds

    def test_partition_crash_mid_run_keeps_survivors_consistent(self):
        workload = bank_transfer_workload(
            num_transfers=8, num_partitions=3, seed=5
        )

        async def drive():
            service = AsyncClusterService(
                ClusterConfig(
                    num_partitions=3, commit_protocol="2PC", seed=5,
                    max_time=300.0,
                )
            )
            await service.start()
            results = []
            for index, txn in enumerate(workload.transactions):
                if index == 4:
                    service.crash_partition(2)
                results.append(await service.submit(txn, timeout_units=30.0))
            report = await service.shutdown()
            return results, report

        results, report = asyncio.run(drive())
        assert report.execution_class == "crash-failure"
        assert 2 in report.crashes
        # some transaction touching P2 after the crash must have hung
        assert any(r is None for r in results)
        # the invariant battery still holds on the surviving state
        assert report.invariants is not None and report.invariants.holds
        # every unfinished transaction is accounted for
        assert set(report.pending_transactions) == {
            workload.transactions[i].txn_id
            for i, r in enumerate(results)
            if r is None
        }

    def test_drop_policy_classifies_as_network_failure(self):
        workload = uniform_workload(
            num_transactions=2, num_partitions=2, participants_per_txn=2, seed=9
        )

        async def drive():
            service = AsyncClusterService(
                ClusterConfig(
                    num_partitions=2, commit_protocol="2PC", seed=9,
                    max_time=100.0,
                ),
                # a dead network: every EXEC is dropped at the link
                default_link_policy=LinkPolicy(drop_probability=1.0),
            )
            await service.start()
            outcomes = [
                await service.submit(txn, timeout_units=10.0)
                for txn in workload.transactions
            ]
            report = await service.shutdown()
            return outcomes, report, service.transport.dropped

        outcomes, report, dropped = asyncio.run(drive())
        assert outcomes == [None, None]
        assert dropped > 0
        assert report.execution_class == "network-failure"
        assert report.incomplete == 2
        # nothing prepared, so the surviving (empty) state is consistent
        assert report.invariants is not None and report.invariants.holds

    def test_submit_before_start_rejected(self):
        async def drive():
            service = AsyncClusterService(ClusterConfig(num_partitions=2))
            workload = uniform_workload(
                num_transactions=1, num_partitions=2, participants_per_txn=2,
                seed=0,
            )
            with pytest.raises(ConfigurationError):
                await service.submit(workload.transactions[0])

        asyncio.run(drive())


# --------------------------------------------------------------------------- #
# crash recovery: rejoin by WAL replay, retry, fault-surface validation
# --------------------------------------------------------------------------- #
def spaced_transfers():
    """Multi-partition transactions with a quiet window between them."""
    return [
        Transaction.of(
            "t-early",
            [Operation.write(1, "a", 10), Operation.write(2, "b", 20)],
            submit_time=0.0,
        ),
        Transaction.of(
            "t-after-rejoin",
            [Operation.write(2, "b", 21), Operation.write(3, "c", 30)],
            submit_time=60.0,
        ),
        Transaction.of(
            "t-late",
            [Operation.write(1, "a", 11), Operation.write(2, "d", 40)],
            submit_time=100.0,
        ),
    ]


class TestRecovery:
    def test_fault_surface_raises_clear_configuration_errors(self):
        workload = uniform_workload(
            num_transactions=1, num_partitions=2, participants_per_txn=2, seed=0
        )

        async def drive():
            service = AsyncClusterService(
                ClusterConfig(num_partitions=2, max_time=100.0)
            )
            await service.start()
            with pytest.raises(ConfigurationError, match="unknown process"):
                service.crash_partition(99)
            with pytest.raises(ConfigurationError, match="unknown process"):
                service.recover_partition(99)
            with pytest.raises(ConfigurationError, match="nothing to recover"):
                service.recover_partition(1)
            with pytest.raises(ConfigurationError, match="client coordinator"):
                service.recover_partition(service.client_pid)
            service.crash_partition(1)
            with pytest.raises(ConfigurationError, match="already crashed"):
                service.crash_partition(1)
            service.crash_partition(service.client_pid)
            with pytest.raises(ConfigurationError, match="client coordinator"):
                await service.submit(workload.transactions[0])
            await service.shutdown()

        asyncio.run(drive())

    def test_client_rejoin_rejected_at_construction(self):
        with pytest.raises(ConfigurationError, match="client coordinator"):
            AsyncClusterService(
                ClusterConfig(
                    num_partitions=2,
                    # pid 3 is the client of a 2-partition cluster
                    fault_plan=FaultPlan.crash_recover(3, at=5.0, rejoin_at=9.0),
                )
            )

    def test_crash_and_rejoin_commits_the_fault_free_transaction_set(self):
        # the acceptance scenario on the wall clock: P2 crashes in a quiet
        # window and rejoins by WAL replay before the next transaction that
        # needs it; with a retry policy absorbing unlucky timing, the run
        # commits exactly the fault-free set and the invariant battery holds
        # on the recovered store
        base = dict(
            num_partitions=3,
            commit_protocol="INBAC",
            commit_f=1,
            seed=5,
            max_time=400.0,
            retry_policy=RetryPolicy(max_attempts=4, timeout_units=25.0),
        )
        free = run_cluster(
            ClusterConfig(**base), spaced_transfers(), backend="asyncio"
        )
        recovered = run_cluster(
            ClusterConfig(
                **base,
                fault_plan=FaultPlan.crash_recover(2, at=20.0, rejoin_at=40.0),
            ),
            spaced_transfers(),
            backend="asyncio",
        )
        committed = lambda report: {
            o.txn_id for o in report.outcomes if o.decision == COMMIT
        }
        assert committed(free) == committed(recovered) == {
            "t-early", "t-after-rejoin", "t-late"
        }
        assert recovered.incomplete == 0
        assert recovered.invariants is not None and recovered.invariants.holds
        assert recovered.store_snapshots == free.store_snapshots
        [event] = recovered.recovery_events
        assert event.pid == 2
        assert event.rejoined_at > event.crashed_at
        assert event.replayed_transactions >= 1  # t-early was durable on P2
        assert 2 in recovered.crashes
        assert recovered.execution_class == "crash-failure"

    def test_live_recover_partition_returns_the_event(self):
        async def drive():
            service = AsyncClusterService(
                ClusterConfig(num_partitions=3, commit_f=1, max_time=200.0)
            )
            await service.start()
            service.crash_partition(2)
            await asyncio.sleep(service.unit * 2)
            event = service.recover_partition(2)
            report = await service.shutdown()
            return event, report

        event, report = asyncio.run(drive())
        assert event.pid == 2
        assert event.downtime > 0
        assert report.recovery_events == [event]
        assert report.invariants is not None and report.invariants.holds

    def test_outage_windows_drop_and_heal(self):
        workload = uniform_workload(
            num_transactions=2, num_partitions=2, participants_per_txn=2, seed=9
        )

        async def drive():
            service = AsyncClusterService(
                ClusterConfig(
                    num_partitions=2, commit_protocol="2PC", seed=9,
                    max_time=100.0,
                ),
                # every link is down for the first 50 units, then heals
                default_link_policy=LinkPolicy(outages=((0.0, 50.0),)),
            )
            await service.start()
            first = await service.submit(
                workload.transactions[0], timeout_units=10.0
            )
            while service.runtime.now_units() < 52.0:
                await asyncio.sleep(service.unit)
            second = await service.submit(
                workload.transactions[1], timeout_units=30.0
            )
            report = await service.shutdown()
            return first, second, report, service.transport.outage_dropped

        first, second, report, outage_dropped = asyncio.run(drive())
        assert first is None  # submitted into the outage window
        assert second is not None and second.completed  # after the heal
        assert outage_dropped > 0
        assert report.execution_class == "network-failure"

    def test_slow_factor_scales_link_delay(self):
        policy = LinkPolicy(delay_units=2.0, jitter_units=1.0, slow_factor=3.0)
        assert policy.max_delay_units == 9.0
        assert policy.faulty
        with pytest.raises(ConfigurationError):
            LinkPolicy(slow_factor=0.0)
        with pytest.raises(ConfigurationError):
            LinkPolicy(outages=((5.0, 3.0),))
