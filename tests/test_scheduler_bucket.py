"""Bucket-queue scheduler: gating, trace equivalence, timer semantics.

The bucket queue is only allowed to exist because it is *invisible*: for
every registered delay model and fault plan, a run on the bucket queue must
produce a trace byte-identical (same fingerprint) to the same run on the
binary heap.  These tests pin that equivalence plus the auto-gating rules
and the ``cancel_timer`` regression from the same PR.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.exp.registry import (
    NamedDelayFactory,
    NamedFaultFactory,
    delay_model_names,
    fault_plan_names,
)
from repro.explore.schedule import ScheduleController
from repro.protocols import INBAC, TwoPhaseCommit
from repro.sim.network import FixedDelay, FlakyLinkDelay, UniformDelay
from repro.sim.runner import Scheduler, Simulation


def _run_fingerprint(protocol, delay_name, fault_name, event_queue, seed=7):
    sim = Simulation(
        n=4,
        f=1,
        process_class=protocol,
        delay_model=NamedDelayFactory(delay_name, {})(seed),
        fault_plan=NamedFaultFactory(fault_name, {})(),
        seed=seed,
        trace_level="full",
        event_queue=event_queue,
    )
    return sim.run(votes=[1, 1, 0, 1]).trace.fingerprint()


class TestQueueGating:
    @pytest.mark.parametrize(
        "model",
        [FixedDelay(1.0), UniformDelay(0.2, 1.0, seed=3)],
        ids=["fixed", "uniform"],
    )
    def test_auto_picks_bucket_for_bounded_models(self, model):
        scheduler = Scheduler(n=4, f=1, delay_model=model)
        assert scheduler._bucketq is not None

    def test_auto_picks_heap_for_unbounded_models(self):
        model = FlakyLinkDelay(u=1.0, outages=((1, 2, 0.0, 3.0),))
        scheduler = Scheduler(n=4, f=1, delay_model=model)
        assert scheduler._bucketq is None

    def test_controller_forces_heap_under_auto(self):
        # controllers defer/inspect Event objects, which only the heap holds
        scheduler = Scheduler(
            n=4, f=1, delay_model=FixedDelay(1.0), controller=ScheduleController()
        )
        assert scheduler._bucketq is None

    def test_explicit_bucket_with_controller_is_rejected(self):
        with pytest.raises(ConfigurationError):
            Scheduler(
                n=4,
                f=1,
                delay_model=FixedDelay(1.0),
                controller=ScheduleController(),
                event_queue="bucket",
            )

    def test_explicit_heap_is_honored(self):
        scheduler = Scheduler(
            n=4, f=1, delay_model=FixedDelay(1.0), event_queue="heap"
        )
        assert scheduler._bucketq is None

    def test_unknown_queue_name_is_rejected(self):
        with pytest.raises(ConfigurationError):
            Scheduler(n=4, f=1, event_queue="calendar")
        with pytest.raises(ConfigurationError):
            Simulation(n=4, f=1, process_class=TwoPhaseCommit, event_queue="x")


class TestBucketHeapEquivalence:
    @pytest.mark.parametrize("fault_name", sorted(fault_plan_names()))
    @pytest.mark.parametrize("delay_name", sorted(delay_model_names()))
    @pytest.mark.parametrize("protocol", [TwoPhaseCommit, INBAC])
    def test_fingerprints_identical_across_queues(
        self, protocol, delay_name, fault_name
    ):
        # the full registered matrix; for unbounded models "bucket" is an
        # explicit request, exercising the forced-bucket path too
        heap_fp = _run_fingerprint(protocol, delay_name, fault_name, "heap")
        bucket_fp = _run_fingerprint(protocol, delay_name, fault_name, "bucket")
        auto_fp = _run_fingerprint(protocol, delay_name, fault_name, "auto")
        assert bucket_fp == heap_fp
        assert auto_fp == heap_fp

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_equivalence_holds_across_seeds(self, seed):
        heap_fp = _run_fingerprint(INBAC, "uniform", "crash", "heap", seed=seed)
        bucket_fp = _run_fingerprint(INBAC, "uniform", "crash", "bucket", seed=seed)
        assert bucket_fp == heap_fp


class TestCancelTimer:
    def test_cancel_of_never_armed_timer_is_a_noop(self):
        # regression: cancelling a name that was never armed used to insert
        # a generation entry, growing the map for defensive cancellers
        scheduler = Scheduler(n=4, f=1, delay_model=FixedDelay(1.0))
        scheduler.cancel_timer(1, "never-armed")
        assert (1, "never-armed") not in scheduler._timer_generation

    def test_cancel_of_armed_timer_still_suppresses_it(self):
        fired = []

        class OneTimer(TwoPhaseCommit):
            def on_start(self):
                super().on_start()
                if self.pid == 1:
                    self.env.set_timer(2.0, "probe")
                    self.env.cancel_timer("probe")

            def timeout(self, name):
                if name == "probe":
                    fired.append(self.pid)
                super().timeout(name)

        for event_queue in ("heap", "bucket"):
            fired.clear()
            sim = Simulation(
                n=4,
                f=1,
                process_class=OneTimer,
                delay_model=FixedDelay(0.5),
                max_time=10.0,
                # keep running past the decision so the timer window elapses
                stop_when_all_correct_decided=False,
                event_queue=event_queue,
            )
            sim.run(votes=[1, 1, 1, 1])
            assert fired == []

    def test_rearmed_timer_fires_once_on_both_queues(self):
        fired = []

        class Rearm(TwoPhaseCommit):
            def on_start(self):
                super().on_start()
                if self.pid == 1:
                    self.env.set_timer(1.0, "probe")
                    self.env.set_timer(2.0, "probe")  # supersedes the first

            def timeout(self, name):
                if name == "probe":
                    fired.append(self.env.now())
                super().timeout(name)

        for event_queue in ("heap", "bucket"):
            fired.clear()
            sim = Simulation(
                n=4,
                f=1,
                process_class=Rearm,
                delay_model=FixedDelay(0.2),
                max_time=10.0,
                stop_when_all_correct_decided=False,
                event_queue=event_queue,
            )
            sim.run(votes=[1, 1, 1, 1])
            assert fired == [2.0]
