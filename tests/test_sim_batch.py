"""Tests for repro.sim.batch: bucket queue and batched delay sampling.

The contract under test is *byte-identity*, not statistical similarity:
every fast path (bucket pops, batched draws) must reproduce exactly what the
slow path (binary heap, per-call ``delay(...)``) would have produced.
"""

from __future__ import annotations

import heapq
import random

import pytest

import repro.sim.batch as batch_mod
from repro.errors import ConfigurationError
from repro.sim.batch import (
    DEFAULT_BATCH_SIZE,
    MIN_VECTOR_BATCH,
    BatchedDelaySampler,
    BucketQueue,
    sample_uniform_batch,
)
from repro.sim.network import (
    AdversarialDelay,
    FixedDelay,
    FlakyLinkDelay,
    LognormalDelay,
    UniformDelay,
)


class TestBucketQueue:
    def test_empty_queue_is_falsy(self):
        queue = BucketQueue()
        assert not queue
        assert len(queue) == 0

    def test_fifo_within_time_and_priority(self):
        queue = BucketQueue()
        for tag in "abc":
            queue.push(1.0, 2, tag)
        assert [queue.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_priority_order_within_one_time(self):
        queue = BucketQueue()
        queue.push(1.0, 3, "timer")
        queue.push(1.0, 0, "crash")
        queue.push(1.0, 2, "delivery")
        assert [queue.pop()[1] for _ in range(3)] == [0, 2, 3]

    def test_time_dominates_priority(self):
        queue = BucketQueue()
        queue.push(2.0, 0, "later-crash")
        queue.push(1.0, 4, "earlier-control")
        assert queue.pop() == (1.0, 4, "earlier-control")
        assert queue.pop() == (2.0, 0, "later-crash")

    def test_peek_time_and_bucket_cleanup(self):
        queue = BucketQueue()
        queue.push(3.0, 2, "x")
        queue.push(5.0, 2, "y")
        assert queue.peek_time() == 3.0
        queue.pop()
        assert queue.peek_time() == 5.0
        queue.pop()
        assert not queue
        assert queue.buckets == {}
        assert queue.times == []

    def test_interleaved_push_pop_allows_past_times(self):
        # no monotonicity assumption: pushing an earlier time after popping
        # a later one must still order correctly
        queue = BucketQueue()
        queue.push(5.0, 2, "late")
        assert queue.pop()[2] == "late"
        queue.push(1.0, 2, "early")
        queue.push(9.0, 2, "later")
        assert queue.pop()[2] == "early"
        assert queue.pop()[2] == "later"

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_randomized_equivalence_with_reference_heap(self, seed):
        # drive a BucketQueue and a (time, priority, seq) heap with one
        # random push/pop script; every pop must match exactly
        rng = random.Random(seed)
        queue = BucketQueue()
        heap: list = []
        seq = 0
        times = [round(rng.uniform(0.0, 4.0), 1) for _ in range(12)]
        for step in range(2000):
            if heap and rng.random() < 0.45:
                expected = heapq.heappop(heap)
                got = queue.pop()
                assert got == (expected[0], expected[1], expected[3])
            else:
                time = rng.choice(times)
                priority = rng.randrange(5)
                entry = (step, "payload")
                queue.push(time, priority, entry)
                heapq.heappush(heap, (time, priority, seq, entry))
                seq += 1
            assert len(queue) == len(heap)
        while heap:
            expected = heapq.heappop(heap)
            got = queue.pop()
            assert got == (expected[0], expected[1], expected[3])
        assert not queue


class TestSampleUniformBatch:
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_batch_matches_scalar_draws(self, seed):
        k = 257
        scalar_rng = random.Random(seed)
        batch_rng = random.Random(seed)
        expected = [scalar_rng.uniform(0.2, 1.5) for _ in range(k)]
        got = sample_uniform_batch(batch_rng, 0.2, 1.5, k)
        assert got == expected  # byte-identical, not approx

    def test_rng_state_identical_after_batch(self):
        # interleaving batched and scalar draws must not diverge the stream
        scalar_rng = random.Random(99)
        batch_rng = random.Random(99)
        [scalar_rng.uniform(0.0, 1.0) for _ in range(100)]
        sample_uniform_batch(batch_rng, 0.0, 1.0, 100)
        assert batch_rng.getstate() == scalar_rng.getstate()
        assert batch_rng.uniform(0.0, 1.0) == scalar_rng.uniform(0.0, 1.0)

    def test_small_batches_use_scalar_path(self):
        rng_a = random.Random(5)
        rng_b = random.Random(5)
        k = MIN_VECTOR_BATCH - 1
        assert sample_uniform_batch(rng_a, 0.1, 0.9, k) == [
            rng_b.uniform(0.1, 0.9) for _ in range(k)
        ]

    def test_fallback_without_numpy(self, monkeypatch):
        # machines without numpy must produce the same bytes, not just the
        # same distribution
        with_np = sample_uniform_batch(random.Random(3), 0.3, 1.0, 128)
        monkeypatch.setattr(batch_mod, "np", None)
        without_np = sample_uniform_batch(random.Random(3), 0.3, 1.0, 128)
        assert without_np == with_np


class TestBatchedDelaySampler:
    def test_rejects_non_positive_batch_size(self):
        with pytest.raises(ConfigurationError):
            BatchedDelaySampler(batch_size=0)

    def test_default_batch_size(self):
        assert BatchedDelaySampler().batch_size == DEFAULT_BATCH_SIZE

    @pytest.mark.parametrize(
        "make_model",
        [
            lambda: FixedDelay(0.7),
            lambda: UniformDelay(0.2, 1.0, seed=11),
            lambda: LognormalDelay(median=0.3, sigma=1.0, u=1.0, seed=11),
        ],
        ids=["fixed", "uniform", "lognormal"],
    )
    def test_iid_models_bind(self, make_model):
        sampler = BatchedDelaySampler()
        assert sampler.bind(make_model()) is True
        assert sampler.bound

    @pytest.mark.parametrize(
        "model",
        [
            FlakyLinkDelay(u=1.0, slow_pairs={(1, 2): 3.0}),
            AdversarialDelay(lambda s, d, p, t: 0.5),
        ],
        ids=["flaky-link", "adversarial"],
    )
    def test_stateful_models_refuse_bind(self, model):
        # their draws depend on (src, dst, send_time), so pre-drawing a
        # surplus would change which draw each message sees
        sampler = BatchedDelaySampler()
        assert sampler.bind(model) is False
        assert not sampler.bound

    @pytest.mark.parametrize("batch_size", [1, 3, 64])
    def test_draws_match_per_call_delays_across_refills(self, batch_size):
        # n_draws straddles several refill boundaries for every batch_size
        n_draws = 200
        reference = UniformDelay(0.2, 1.0, seed=42)
        expected = [reference.delay(1, 2, None, 0.0) for _ in range(n_draws)]
        sampler = BatchedDelaySampler(batch_size=batch_size)
        assert sampler.bind(UniformDelay(0.2, 1.0, seed=42))
        assert [sampler.next_delay() for _ in range(n_draws)] == expected

    def test_rebind_resets_the_cursor(self):
        # the sweep engine reuses one sampler across trials; a rebind must
        # not leak draws buffered for the previous trial's model
        sampler = BatchedDelaySampler(batch_size=16)
        assert sampler.bind(UniformDelay(0.2, 1.0, seed=1))
        sampler.next_delay()
        assert sampler.bind(UniformDelay(0.2, 1.0, seed=2))
        assert sampler.next_delay() == UniformDelay(0.2, 1.0, seed=2).delay(
            1, 2, None, 0.0
        )

    def test_fixed_model_batches_are_constant(self):
        sampler = BatchedDelaySampler(batch_size=8)
        assert sampler.bind(FixedDelay(0.7))
        assert [sampler.next_delay() for _ in range(20)] == [0.7] * 20
