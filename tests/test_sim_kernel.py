"""Tests for the simulation kernel: clock, events, network, fault plans."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import (
    PRIORITY_CRASH,
    PRIORITY_DELIVERY,
    PRIORITY_PROPOSE,
    PRIORITY_TIMER,
    CrashEvent,
    MessageDeliveryEvent,
    ProposeEvent,
    TimerEvent,
)
from repro.sim.faults import FAR_FUTURE, DelayRule, FaultPlan
from repro.sim.network import (
    AdversarialDelay,
    FixedDelay,
    LognormalDelay,
    Network,
    UniformDelay,
)


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance_and_unit_conversion(self):
        clock = VirtualClock(unit=2.0)
        clock.advance_to(6.0)
        assert clock.now == 6.0
        assert clock.units_to_time(3) == 6.0
        assert clock.time_to_units(6.0) == 3.0

    def test_cannot_move_backwards(self):
        clock = VirtualClock()
        clock.advance_to(5.0)
        with pytest.raises(SimulationError):
            clock.advance_to(4.0)

    def test_invalid_unit_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(unit=0)

    def test_reset(self):
        clock = VirtualClock()
        clock.advance_to(3.0)
        clock.reset()
        assert clock.now == 0.0


class TestEventOrdering:
    def test_time_dominates(self):
        early = TimerEvent(time=1.0, priority=PRIORITY_TIMER, seq=5, pid=1)
        late = MessageDeliveryEvent(time=2.0, priority=PRIORITY_DELIVERY, seq=1, dst=1)
        assert early.sort_key() < late.sort_key()

    def test_delivery_before_timer_at_equal_time(self):
        # the paper's Appendix A scheduling remark
        delivery = MessageDeliveryEvent(time=1.0, priority=PRIORITY_DELIVERY, seq=9, dst=1)
        timer = TimerEvent(time=1.0, priority=PRIORITY_TIMER, seq=2, pid=1)
        assert delivery.sort_key() < timer.sort_key()

    def test_crash_before_everything_at_equal_time(self):
        crash = CrashEvent(time=1.0, priority=PRIORITY_CRASH, seq=7, pid=1)
        propose = ProposeEvent(time=1.0, priority=PRIORITY_PROPOSE, seq=1, pid=1)
        assert crash.sort_key() < propose.sort_key()

    def test_sequence_breaks_ties_deterministically(self):
        a = TimerEvent(time=1.0, priority=PRIORITY_TIMER, seq=1, pid=1)
        b = TimerEvent(time=1.0, priority=PRIORITY_TIMER, seq=2, pid=1)
        assert a.sort_key() < b.sort_key()


class TestDelayModels:
    def test_fixed_delay(self):
        model = FixedDelay(1.0)
        assert model.delay(1, 2, None, 0.0) == 1.0
        assert model.bound() == 1.0

    def test_fixed_delay_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            FixedDelay(0)

    def test_uniform_delay_within_range_and_bound(self):
        model = UniformDelay(0.2, 0.9, seed=7)
        samples = [model.delay(1, 2, None, 0.0) for _ in range(200)]
        assert all(0.2 <= s <= 0.9 for s in samples)
        assert model.bound() == 0.9

    def test_uniform_delay_validation(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(0.5, 0.2)
        with pytest.raises(ConfigurationError):
            UniformDelay(0.1, 0.9, u=0.5)

    def test_uniform_delay_validation_messages_are_precise(self):
        # regression: lo <= 0 and hi < lo used to share one vague message
        with pytest.raises(ConfigurationError) as err:
            UniformDelay(0.0, 1.0)
        assert "lower bound must be positive" in str(err.value)
        assert "lo=0.0" in str(err.value)
        with pytest.raises(ConfigurationError) as err:
            UniformDelay(0.5, 0.2)
        assert "upper bound must be >= lower bound" in str(err.value)
        assert "hi=0.2 < lo=0.5" in str(err.value)

    def test_lognormal_delay_clipped_at_bound(self):
        model = LognormalDelay(median=0.2, sigma=1.5, u=1.0, seed=3)
        samples = [model.delay(1, 2, None, 0.0) for _ in range(500)]
        assert all(0 < s <= 1.0 for s in samples)
        assert any(s < 0.5 for s in samples)

    def test_lognormal_validation(self):
        with pytest.raises(ConfigurationError):
            LognormalDelay(median=1.0, sigma=0.5, u=0.5)

    def test_adversarial_delay(self):
        model = AdversarialDelay(lambda s, d, p, t: 5.0 if d == 2 else 1.0, u=1.0)
        assert model.delay(1, 2, None, 0.0) == 5.0
        assert model.delay(1, 3, None, 0.0) == 1.0

    def test_adversarial_delay_must_be_positive(self):
        # a mid-run fault, not a construction-time one: SimulationError so
        # sweep error capture (TrialResult.error) classifies it correctly
        model = AdversarialDelay(lambda s, d, p, t: -1.0)
        with pytest.raises(SimulationError):
            model.delay(1, 2, None, 0.0)

    def test_deterministic_given_seed(self):
        a = [UniformDelay(0.1, 1.0, seed=5).delay(1, 2, None, 0.0) for _ in range(5)]
        b = [UniformDelay(0.1, 1.0, seed=5).delay(1, 2, None, 0.0) for _ in range(5)]
        assert a != sorted(a) or True  # values vary
        assert a == b


class TestDelayRules:
    def test_requires_exactly_one_of_delay_or_extra(self):
        with pytest.raises(ConfigurationError):
            DelayRule(src=1)
        with pytest.raises(ConfigurationError):
            DelayRule(src=1, delay=2.0, extra=1.0)

    def test_absolute_delay_override(self):
        rule = DelayRule(src=1, dst=2, delay=9.0)
        assert rule.apply(1, 2, None, 0.0, 0, nominal=1.0) == 9.0
        assert rule.apply(1, 3, None, 0.0, 0, nominal=1.0) is None

    def test_extra_delay_adds_to_nominal(self):
        rule = DelayRule(src=1, extra=3.0)
        assert rule.apply(1, 2, None, 0.0, 0, nominal=1.0) == 4.0

    def test_time_window_matching(self):
        rule = DelayRule(after_time=2.0, before_time=4.0, delay=9.0)
        assert rule.apply(1, 2, None, 1.0, 0, nominal=1.0) is None
        assert rule.apply(1, 2, None, 2.5, 0, nominal=1.0) == 9.0
        assert rule.apply(1, 2, None, 4.0, 0, nominal=1.0) is None

    def test_predicate_matching(self):
        rule = DelayRule(predicate=lambda p: p[0] == "C", delay=9.0)
        assert rule.apply(1, 2, ("C", 1), 0.0, 0, nominal=1.0) == 9.0
        assert rule.apply(1, 2, ("V", 1), 0.0, 0, nominal=1.0) is None

    def test_nth_match(self):
        rule = DelayRule(src=1, delay=9.0, nth_match=1)
        assert rule.apply(1, 2, None, 0.0, 0, nominal=1.0) is None  # 0th match
        assert rule.apply(1, 2, None, 0.0, 1, nominal=1.0) == 9.0  # 1st match
        assert rule.apply(1, 2, None, 0.0, 2, nominal=1.0) is None

    def test_network_failure_classification(self):
        assert DelayRule(delay=5.0).is_network_failure(u=1.0)
        assert not DelayRule(delay=0.5).is_network_failure(u=1.0)
        assert DelayRule(extra=0.1).is_network_failure(u=1.0)


class TestFaultPlans:
    def test_failure_free_plan(self):
        plan = FaultPlan.failure_free()
        assert plan.is_failure_free()
        assert plan.execution_class(1.0) == "failure-free"

    def test_crash_plan_classification(self):
        plan = FaultPlan.crash(2, at=1.0)
        assert plan.execution_class(1.0) == "crash-failure"
        assert plan.crash_count() == 1

    def test_delay_plan_classification(self):
        plan = FaultPlan.delay_messages(src=1, delay=FAR_FUTURE)
        assert plan.execution_class(1.0) == "network-failure"

    def test_crash_plus_bounded_delays_is_still_crash_failure(self):
        plan = FaultPlan(crashes={1: 0.0}, delay_rules=[DelayRule(src=2, delay=0.5)])
        assert plan.execution_class(1.0) == "crash-failure"

    def test_merged_plans(self):
        merged = FaultPlan.crash(1, 0.0).merged_with(FaultPlan.delay_messages(src=2))
        assert merged.crashes == {1: 0.0}
        assert len(merged.delay_rules) == 1
        assert merged.execution_class(1.0) == "network-failure"

    def test_merge_keeps_earliest_crash_time(self):
        merged = FaultPlan.crash(1, 3.0).merged_with(FaultPlan.crash(1, 1.0))
        assert merged.crashes == {1: 1.0}

    def test_validation_rejects_too_many_crashes(self):
        plan = FaultPlan.crashes_at({1: 0.0, 2: 0.0})
        with pytest.raises(ConfigurationError):
            plan.validate(n=4, f=1)
        plan.validate(n=4, f=2)

    def test_validation_rejects_unknown_processes(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.crash(9).validate(n=4, f=3)


class TestNetwork:
    def test_default_bound_is_one(self):
        assert Network().u == 1.0

    def test_overrides_take_precedence(self):
        network = Network(FixedDelay(1.0))
        network.install_overrides([DelayRule(src=1, dst=2, delay=7.0)])
        assert network.transit_delay(1, 2, None, 0.0, 1) == 7.0
        assert network.transit_delay(1, 3, None, 0.0, 2) == 1.0

    def test_extra_rule_composes_with_model(self):
        network = Network(FixedDelay(0.5))
        network.install_overrides([DelayRule(dst=3, extra=2.0)])
        assert network.transit_delay(1, 3, None, 0.0, 1) == 2.5

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_non_positive_override_is_rejected_naming_the_rule(self, bad):
        # regression: overrides used to be returned unvalidated, silently
        # scheduling delivery at or before the send time
        network = Network(FixedDelay(1.0))
        rule = DelayRule(src=1, dst=2, delay=bad)
        network.install_overrides([rule])
        with pytest.raises(SimulationError) as err:
            network.transit_delay(1, 2, None, 0.0, 1)
        message = str(err.value)
        assert repr(rule) in message
        assert str(bad) in message

    def test_non_positive_override_surfaces_mid_simulation(self):
        # end to end: the bad rule fires inside a run and is classified as a
        # simulation fault, not swallowed into a corrupted schedule
        from repro.protocols import TwoPhaseCommit
        from repro.sim.faults import FaultPlan
        from repro.sim.runner import Simulation

        plan = FaultPlan(delay_rules=[DelayRule(src=1, dst=2, delay=0.0)])
        sim = Simulation(n=4, f=1, process_class=TwoPhaseCommit)
        with pytest.raises(SimulationError):
            sim.run(votes=[1, 1, 1, 1], fault_plan=plan)
