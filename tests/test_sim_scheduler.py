"""Tests for the scheduler, the process abstraction and trace recording."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolViolationError
from repro.sim.faults import FaultPlan
from repro.sim.network import FixedDelay
from repro.sim.process import Process, ProcessComponent
from repro.sim.runner import Scheduler, Simulation, run_nice_execution
from repro.sim.trace import Trace


class EchoProcess(Process):
    """Sends its vote to everyone, decides the set of votes it saw at time 2."""

    def __init__(self, pid, n, f, env):
        super().__init__(pid, n, f, env)
        self.seen = {}
        self.timeouts = []

    def on_propose(self, value):
        self.seen[self.pid] = value
        for q in self.other_pids():
            self.send(q, ("vote", value))
        self.set_timer(2, name="decide")

    def on_deliver(self, src, payload):
        self.seen[src] = payload[1]

    def on_timeout(self, name):
        self.timeouts.append((name, self.now()))
        if name == "decide" and len(self.seen) == self.n:
            self.decide(sum(self.seen.values()))


class SelfSender(Process):
    """Exercises local self-messages (not counted, delivered immediately)."""

    def __init__(self, pid, n, f, env):
        super().__init__(pid, n, f, env)
        self.got_self_message_at = None

    def on_propose(self, value):
        self.send(self.pid, ("self", value))

    def on_deliver(self, src, payload):
        if src == self.pid:
            self.got_self_message_at = self.now()

    def on_timeout(self, name):
        pass


class TestSchedulerBasics:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Scheduler(n=1, f=1)
        with pytest.raises(ConfigurationError):
            Scheduler(n=4, f=0)
        with pytest.raises(ConfigurationError):
            Scheduler(n=4, f=4)

    def test_simulation_needs_exactly_one_factory(self):
        with pytest.raises(ConfigurationError):
            Simulation(n=3, f=1)
        with pytest.raises(ConfigurationError):
            Simulation(n=3, f=1, process_class=EchoProcess, process_factory=lambda *a: None)

    def test_vote_count_must_match_n(self):
        sim = Simulation(n=3, f=1, process_class=EchoProcess)
        with pytest.raises(ConfigurationError):
            sim.run([1, 1])

    def test_all_processes_decide_with_fixed_delays(self):
        sim = Simulation(n=4, f=1, process_class=EchoProcess)
        result = sim.run([1, 1, 1, 1])
        assert result.decisions() == {1: 4, 2: 4, 3: 4, 4: 4}
        assert result.trace.last_decision_time() == 2.0

    def test_votes_as_dict(self):
        sim = Simulation(n=3, f=1, process_class=EchoProcess)
        result = sim.run({1: 1, 2: 0, 3: 1})
        assert set(result.decisions().values()) == {2}

    def test_message_counting_excludes_self_messages(self):
        sim = Simulation(n=3, f=1, process_class=EchoProcess)
        trace = sim.run([1, 1, 1]).trace
        assert trace.message_count() == 6  # 3 processes x 2 others
        sim2 = Simulation(n=3, f=1, process_class=SelfSender, stop_when_all_correct_decided=False, max_time=5)
        trace2 = sim2.run([1, 1, 1]).trace
        assert trace2.message_count() == 0
        assert all(not m.counted for m in trace2.messages)

    def test_self_messages_arrive_immediately(self):
        sim = Simulation(n=3, f=1, process_class=SelfSender, stop_when_all_correct_decided=False, max_time=5)
        result = sim.run([1, 1, 1])
        assert all(result.process(pid).got_self_message_at == 0.0 for pid in (1, 2, 3))

    def test_double_decision_raises(self):
        class DoubleDecider(EchoProcess):
            def on_timeout(self, name):
                self.decide(1)
                self.decide(1)

        sim = Simulation(n=2, f=1, process_class=DoubleDecider, stop_when_all_correct_decided=False)
        with pytest.raises(ProtocolViolationError):
            sim.run([1, 1])

    def test_send_to_unknown_process_raises(self):
        class BadSender(EchoProcess):
            def on_propose(self, value):
                self.send(99, ("oops",))

        sim = Simulation(n=2, f=1, process_class=BadSender)
        with pytest.raises(Exception):
            sim.run([1, 1])

    def test_metadata_stamped_on_trace(self):
        sim = Simulation(n=3, f=1, process_class=EchoProcess)
        trace = sim.run([1, 1, 1]).trace
        assert trace.metadata["execution_class"] == "failure-free"
        assert trace.metadata["votes"] == {1: 1, 2: 1, 3: 1}


class TestCrashInjection:
    def test_crashed_process_sends_nothing(self):
        plan = FaultPlan.crash(2, at=0.0)
        sim = Simulation(n=3, f=1, process_class=EchoProcess, fault_plan=plan,
                         stop_when_all_correct_decided=False, max_time=10)
        trace = sim.run([1, 1, 1]).trace
        assert all(m.src != 2 for m in trace.counted_messages())
        assert 2 not in trace.decisions
        assert trace.crashes == {2: 0.0}

    def test_crash_mid_execution_stops_later_sends(self):
        class TwoRoundSender(EchoProcess):
            def on_timeout(self, name):
                for q in self.other_pids():
                    self.send(q, ("late", self.pid))

        plan = FaultPlan.crash(1, at=1.5)
        sim = Simulation(n=3, f=1, process_class=TwoRoundSender, fault_plan=plan,
                         stop_when_all_correct_decided=False, max_time=5)
        trace = sim.run([1, 1, 1]).trace
        late_from_1 = [m for m in trace.counted_messages()
                       if m.src == 1 and m.payload[0] == "late"]
        assert late_from_1 == []  # the timer at 2 fires after the crash at 1.5

    def test_messages_to_crashed_process_are_harmless(self):
        plan = FaultPlan.crash(3, at=0.0)
        sim = Simulation(n=3, f=2, process_class=EchoProcess, fault_plan=plan,
                         stop_when_all_correct_decided=False, max_time=10)
        result = sim.run([1, 1, 1])
        # messages addressed to the crashed process are still transmitted but
        # never handled: the crashed process records nothing and never decides
        assert any(m.dst == 3 for m in result.trace.counted_messages())
        assert result.process(3).seen == {}
        assert 3 not in result.trace.decisions


class TestTimers:
    def test_rearming_supersedes_previous_deadline(self):
        class Rearmer(Process):
            def __init__(self, pid, n, f, env):
                super().__init__(pid, n, f, env)
                self.fired = []

            def on_propose(self, value):
                self.set_timer(1, name="t")
                self.set_timer(3, name="t")  # supersedes the first arming

            def on_deliver(self, src, payload):
                pass

            def on_timeout(self, name):
                self.fired.append(self.now())

        sim = Simulation(n=2, f=1, process_class=Rearmer,
                         stop_when_all_correct_decided=False, max_time=10)
        result = sim.run([1, 1])
        assert result.process(1).fired == [3.0]

    def test_cancel_timer(self):
        class Canceller(Process):
            def __init__(self, pid, n, f, env):
                super().__init__(pid, n, f, env)
                self.fired = []

            def on_propose(self, value):
                self.set_timer(1, name="t")
                self.env.cancel_timer("t")

            def on_deliver(self, src, payload):
                pass

            def on_timeout(self, name):
                self.fired.append(name)

        sim = Simulation(n=2, f=1, process_class=Canceller,
                         stop_when_all_correct_decided=False, max_time=5)
        result = sim.run([1, 1])
        assert result.process(1).fired == []

    def test_timer_expiries_recorded_in_trace(self):
        sim = Simulation(n=2, f=1, process_class=EchoProcess)
        trace = sim.run([1, 1]).trace
        assert any(t.name == "decide" for t in trace.timers)


class TestComponents:
    def test_component_messages_are_routed_and_tagged(self):
        class Pinger(ProcessComponent):
            def __init__(self, host):
                super().__init__(host, "ping")
                self.got = []

            def on_deliver(self, src, payload):
                self.got.append((src, payload))

            def on_timeout(self, name):
                pass

        class Host(Process):
            def __init__(self, pid, n, f, env):
                super().__init__(pid, n, f, env)
                self.ping = self.attach_component(Pinger(self))

            def on_propose(self, value):
                self.ping.broadcast(("hello", self.pid), include_self=False)

            def on_deliver(self, src, payload):
                raise AssertionError("component messages must not reach the host handler")

            def on_timeout(self, name):
                pass

        sim = Simulation(n=3, f=1, process_class=Host,
                         stop_when_all_correct_decided=False, max_time=5)
        result = sim.run([1, 1, 1])
        assert sorted(result.process(1).ping.got) == [(2, ("hello", 2)), (3, ("hello", 3))]
        modules = {m.module for m in result.trace.counted_messages()}
        assert modules == {"ping"}

    def test_duplicate_component_name_rejected(self):
        scheduler = Scheduler(n=2, f=1)
        proc = EchoProcess(1, 2, 1, scheduler.env_for(1))

        class Dummy(ProcessComponent):
            def on_deliver(self, src, payload):
                pass

            def on_timeout(self, name):
                pass

        proc.attach_component(Dummy(proc, "x"))
        with pytest.raises(ProtocolViolationError):
            proc.attach_component(Dummy(proc, "x"))


class TestTraceQueries:
    def test_summary_and_histogram(self):
        sim = Simulation(n=3, f=1, process_class=EchoProcess)
        trace = sim.run([1, 1, 1]).trace
        summary = trace.summary()
        assert summary["decided"] == 3
        assert summary["messages_total"] == 6
        assert trace.messages_by_kind() == {"vote": 6}

    def test_causal_depth_of_request_reply(self):
        class RequestReply(Process):
            def on_propose(self, value):
                if self.pid == 1:
                    self.send(2, ("req",))

            def on_deliver(self, src, payload):
                if payload[0] == "req":
                    self.send(src, ("rep",))
                elif payload[0] == "rep":
                    self.decide(1)

            def on_timeout(self, name):
                pass

        sim = Simulation(n=2, f=1, process_class=RequestReply,
                         stop_when_all_correct_decided=False, max_time=5)
        trace = sim.run([1, 1]).trace
        assert trace.causal_depth() == 2

    def test_mod_index_helper(self):
        scheduler = Scheduler(n=4, f=1)
        proc = EchoProcess(1, 4, 1, scheduler.env_for(1))
        assert proc.mod_index(0) == 4
        assert proc.mod_index(4) == 4
        assert proc.mod_index(5) == 1
        assert proc.mod_index(2) == 2

    def test_run_nice_execution_helper(self):
        result = run_nice_execution(EchoProcess, n=3, f=1)
        assert len(result.decisions()) == 3


class TestDeliveredMarking:
    """Regression tests for the O(1) msg-id → record delivery marking.

    The scheduler used to find the record to mark with an O(messages)
    reversed scan of ``trace.messages`` per delivery; it now pops the record
    from a pending-records map.  The observable contract is unchanged:
    exactly the messages actually handed to a live process are marked.
    """

    def test_all_messages_to_live_processes_marked_delivered(self):
        sim = Simulation(n=4, f=1, process_class=EchoProcess)
        trace = sim.run([1, 1, 1, 1]).trace
        assert trace.messages  # 4 x 3 votes
        assert all(m.delivered for m in trace.messages)

    def test_messages_to_crashed_process_stay_unmarked(self):
        plan = FaultPlan.crash(3, at=0.0)
        sim = Simulation(n=3, f=2, process_class=EchoProcess, fault_plan=plan,
                         stop_when_all_correct_decided=False, max_time=10)
        trace = sim.run([1, 1, 1]).trace
        to_crashed = [m for m in trace.messages if m.dst == 3]
        to_live = [m for m in trace.messages if m.dst != 3 and m.src != 3]
        assert to_crashed and all(not m.delivered for m in to_crashed)
        assert to_live and all(m.delivered for m in to_live)

    def test_in_flight_messages_stay_unmarked_when_run_stops_early(self):
        # stopping at the last decision leaves post-decision traffic undelivered
        sim = Simulation(n=4, f=1, process_class=EchoProcess, max_time=1.5)
        trace = sim.run([1, 1, 1, 1]).trace
        late = [m for m in trace.messages if m.recv_time > 1.5]
        assert all(not m.delivered for m in late)

    def test_pending_map_is_drained_on_delivery(self):
        # delivered records are popped, so the map never grows with the run
        scheduler = Scheduler(n=4, f=1)
        scheduler.bind_processes(lambda pid, n, f, env: EchoProcess(pid, n, f, env))
        for pid in range(1, 5):
            scheduler.processes[pid].on_start()
            scheduler.post_propose(pid, 1, at=0.0)
        scheduler.stop_when_all_correct_decided()
        scheduler.run()
        assert scheduler._pending_records == {}

    def test_pending_map_is_drained_for_crashed_destinations_too(self):
        # messages to a crashed process are popped (but not marked) on their
        # delivery event, so the map stays bounded by in-flight messages
        scheduler = Scheduler(n=3, f=2, fault_plan=FaultPlan.crash(3, at=0.0),
                              max_time=10)
        scheduler.bind_processes(lambda pid, n, f, env: EchoProcess(pid, n, f, env))
        for pid in range(1, 4):
            scheduler.processes[pid].on_start()
            scheduler.post_propose(pid, 1, at=0.0)
        trace = scheduler.run()
        assert any(m.dst == 3 for m in trace.messages)
        assert scheduler._pending_records == {}
        assert all(not m.delivered for m in trace.messages if m.dst == 3)


class TestCountingStopCondition:
    """Regression tests for the decremented all-correct-decided counter.

    The all-correct-decided stop used to re-evaluate ``all(pid in
    trace.decisions ...)`` over every correct pid on every event; it is now a
    counter decremented by ``record_decision``.  Both must produce identical
    traces — asserted here against the legacy predicate on a crash-storm
    plan, where the correct set and the decision schedule interact the most.
    """

    class TimedDecider(EchoProcess):
        """Decides at its timer with whatever votes it has seen — so the
        all-correct-decided stop actually fires mid-storm."""

        def on_timeout(self, name):
            self.decide(sum(self.seen.values()))

    def storm_plan(self, n=8, width=3):
        return FaultPlan.crashes_at(
            {pid: 0.5 * (pid % 3) for pid in range(n - width + 1, n + 1)}
        )

    def _prepared_scheduler(self, n, f, plan):
        scheduler = Scheduler(n=n, f=f, fault_plan=plan, max_time=400)
        scheduler.bind_processes(
            lambda pid, n_, f_, env: self.TimedDecider(pid, n_, f_, env)
        )
        for pid in range(1, n + 1):
            scheduler.processes[pid].on_start()
            scheduler.post_propose(pid, 1, at=0.0)
        return scheduler

    def run_with_legacy_predicate(self, n, f, plan):
        scheduler = self._prepared_scheduler(n, f, plan)
        correct = [pid for pid in range(1, n + 1) if pid not in plan.crashes]
        scheduler.set_stop_predicate(
            lambda s: all(pid in s.trace.decisions for pid in correct)
        )
        return scheduler.run()

    def run_with_counter(self, n, f, plan):
        scheduler = self._prepared_scheduler(n, f, plan)
        scheduler.stop_when_all_correct_decided()
        return scheduler.run()

    def test_identical_trace_on_crash_storm(self):
        n, f = 8, 3
        legacy = self.run_with_legacy_predicate(n, f, self.storm_plan(n, 3))
        counter = self.run_with_counter(n, f, self.storm_plan(n, 3))
        assert legacy.decisions  # the stop condition really fired
        assert counter.end_time == legacy.end_time
        assert counter.decisions.keys() == legacy.decisions.keys()
        assert {p: r.time for p, r in counter.decisions.items()} == {
            p: r.time for p, r in legacy.decisions.items()
        }
        assert counter.message_count() == legacy.message_count()
        assert counter.crashes == legacy.crashes

    def test_identical_trace_failure_free(self):
        legacy = self.run_with_legacy_predicate(5, 2, FaultPlan.failure_free())
        counter = self.run_with_counter(5, 2, FaultPlan.failure_free())
        assert counter.end_time == legacy.end_time
        assert counter.message_count() == legacy.message_count()

    def test_counter_reaches_zero_exactly_when_all_correct_decided(self):
        plan = self.storm_plan(8, 3)
        scheduler = self._prepared_scheduler(8, 3, plan)
        scheduler.stop_when_all_correct_decided()
        assert scheduler._undecided_correct == 8 - len(plan.crashes)
        trace = scheduler.run()
        assert scheduler._undecided_correct == 0
        assert set(trace.decisions) >= set(trace.correct_pids())
