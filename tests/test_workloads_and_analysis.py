"""Tests for the workload generators and the analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis import (
    build_table1,
    build_table2,
    build_table3,
    build_table4,
    build_table5,
    compare_measured_to_paper,
    render_table,
)
from repro.analysis.compare import ComparisonRow
from repro.analysis.formulas import (
    one_delay_message_lower_bound,
    paper_table4,
    paper_table5_delays,
    paper_table5_messages,
    paper_table5_problem,
    two_delay_message_lower_bound,
)
from repro.analysis.render import render_matrix
from repro.errors import ConfigurationError
from repro.workloads import (
    all_yes,
    bank_transfer_workload,
    hotspot_workload,
    one_no,
    random_votes,
    uniform_workload,
)


class TestVoteGenerators:
    def test_all_yes(self):
        assert all_yes(4) == [1, 1, 1, 1]

    def test_one_no(self):
        assert one_no(4, which=3) == [1, 1, 0, 1]
        with pytest.raises(ConfigurationError):
            one_no(4, which=5)

    def test_random_votes_reproducible_and_bounded(self):
        a = random_votes(50, no_probability=0.3, seed=9)
        b = random_votes(50, no_probability=0.3, seed=9)
        assert a == b
        assert set(a) <= {0, 1}
        assert 0 < sum(1 for v in a if v == 0) < 50

    def test_random_votes_validation(self):
        with pytest.raises(ConfigurationError):
            random_votes(5, no_probability=1.5)


class TestTransactionWorkloads:
    def test_uniform_workload_shape(self):
        wl = uniform_workload(10, num_partitions=5, participants_per_txn=3, seed=1)
        assert len(wl) == 10
        assert all(len(t.participants()) == 3 for t in wl.transactions)
        assert wl.participants_histogram() == {3: 10}
        # submit times are spaced by the inter-arrival gap
        assert wl.transactions[1].submit_time > wl.transactions[0].submit_time

    def test_uniform_workload_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_workload(5, num_partitions=2, participants_per_txn=3)

    def test_uniform_workload_deterministic(self):
        a = uniform_workload(5, num_partitions=4, seed=3)
        b = uniform_workload(5, num_partitions=4, seed=3)
        assert [t.write_set() for t in a.transactions] == [
            t.write_set() for t in b.transactions
        ]

    def test_hotspot_workload_concentrates_on_hot_keys(self):
        wl = hotspot_workload(
            50, num_partitions=4, hot_keys=1, hot_probability=0.9, seed=2
        )
        hot_writes = sum(
            1
            for t in wl.transactions
            for key in t.write_set()
            if key.endswith(":k0")
        )
        total_writes = sum(len(t.write_set()) for t in wl.transactions)
        assert hot_writes / total_writes > 0.6

    def test_bank_transfer_workload_spans_two_partitions(self):
        wl = bank_transfer_workload(12, num_partitions=5, seed=4)
        assert all(len(t.participants()) == 2 for t in wl.transactions)
        with pytest.raises(ConfigurationError):
            bank_transfer_workload(3, num_partitions=1)


class TestPaperFormulas:
    def test_table5_formulas_at_reference_point(self):
        n, f = 6, 2
        assert paper_table5_messages("1NBAC", n, f) == 30
        assert paper_table5_messages("(n-1+f)NBAC", n, f) == 7
        assert paper_table5_messages("INBAC", n, f) == 24
        assert paper_table5_messages("2PC", n, f) == 10
        assert paper_table5_messages("PaxosCommit", n, f) == 22
        assert paper_table5_messages("FasterPaxosCommit", n, f) == 30
        assert paper_table5_delays("INBAC", n, f) == 2
        assert paper_table5_delays("PaxosCommit", n, f) == 3

    def test_table5_problem_row(self):
        assert paper_table5_problem("2PC") == "Blocking"
        assert paper_table5_problem("INBAC") == "Indulgent"
        assert paper_table5_problem("1NBAC") == "Sync. NBAC"

    def test_special_case_f1_inbac_vs_2pc(self):
        n = 9
        assert paper_table5_messages("INBAC", n, 1) == 2 * n
        assert paper_table5_messages("2PC", n, 1) == 2 * n - 2

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            paper_table5_messages("INBAC", 3, 3)

    def test_table4_and_theorem5_bounds(self):
        table = paper_table4(8, 3)
        assert table["indulgent atomic commit (this paper)"]["messages"] == 17
        assert table["synchronous NBAC (this paper)"]["messages"] == 10
        assert two_delay_message_lower_bound(8, 3) == 48
        assert one_delay_message_lower_bound(8, 3) == 56


class TestTableBuilders:
    def test_build_table1_has_27_rows_and_all_bounds_met(self):
        rows = build_table1(5, 2)
        assert len(rows) == 27
        measured = [r for r in rows if "meets_message_bound" in r]
        assert measured and all(r["meets_message_bound"] == "yes" for r in measured)
        delays = [r for r in rows if "meets_delay_bound" in r]
        assert delays and all(r["meets_delay_bound"] == "yes" for r in delays)

    def test_build_table2_all_delay_optimal(self):
        rows = build_table2(5, 2)
        assert len(rows) == 4
        assert all(r["optimal"] == "yes" for r in rows)

    def test_build_table3_all_message_optimal(self):
        rows = build_table3(5, 2)
        assert len(rows) == 6
        assert all(r["optimal"] == "yes" for r in rows)

    def test_build_table4_contains_both_problems(self):
        rows = build_table4(5, 2)
        assert rows[0]["problem"] == "indulgent atomic commit"
        assert rows[0]["measured_delays"] == 2
        assert rows[1]["measured_messages"] == 6  # n - 1 + f

    def test_builders_accept_a_prerun_sweep(self):
        from repro.analysis import measurement_grid, table2_protocols
        from repro.exp import run_sweep

        sweep = run_sweep(measurement_grid(table2_protocols(), 5, 2), workers=1)
        assert build_table2(5, 2, sweep=sweep) == build_table2(5, 2)

    def test_builders_reject_a_mismatched_sweep(self):
        from repro.analysis import measurement_grid, table2_protocols
        from repro.exp import run_sweep

        sweep = run_sweep(measurement_grid(table2_protocols(), 5, 2), workers=1)
        with pytest.raises(ConfigurationError):
            build_table2(8, 3, sweep=sweep)

    def test_build_table5_message_counts_match_paper_exactly(self):
        rows, comparisons = build_table5(6, 2)
        assert len(rows) == 6
        message_rows = [c for c in comparisons if c.metric == "messages"]
        assert all(c.matches for c in message_rows)
        # delays match for all but the chain protocol's off-by-one convention
        delay_mismatches = [
            c for c in comparisons if c.metric == "delays" and not c.matches
        ]
        assert {c.protocol for c in delay_mismatches} <= {"(n-1+f)NBAC"}

    def test_comparison_aggregation(self):
        rows = [
            ComparisonRow("e", "p", 4, 1, "messages", 8, 8),
            ComparisonRow("e", "p", 4, 1, "delays", 3, 2),
            ComparisonRow("e", "q", 4, 1, "delays", 2, None),
        ]
        summary = compare_measured_to_paper(rows)
        assert summary["total"] == 3
        assert summary["exact_matches"] == 2
        assert len(summary["mismatches"]) == 1
        assert rows[1].ratio == 1.5


class TestRendering:
    def test_render_table_alignment_and_missing_values(self):
        text = render_table(
            [{"a": 1, "b": None}, {"a": 22, "b": "x"}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-" in lines[3]  # None rendered as dash
        assert "22" in lines[4]

    def test_render_table_empty(self):
        assert "(empty)" in render_table([], title="nothing")

    def test_render_table_float_formatting(self):
        text = render_table([{"x": 2.0, "y": 2.345}])
        assert "2 " in text or text.rstrip().endswith("2") or "2  " in text
        assert "2.35" in text or "2.34" in text

    def test_render_matrix(self):
        text = render_matrix(
            {("r1", "c1"): "1/0", ("r2", "c2"): "2/2n-2+f"},
            row_labels=["r1", "r2"],
            col_labels=["c1", "c2"],
            corner="NF\\CF",
        )
        assert "NF\\CF" in text
        assert "2/2n-2+f" in text
